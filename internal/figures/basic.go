package figures

import (
	"context"
	"fmt"
	"math"

	"repro/internal/agent"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/plot"
	"repro/internal/solvecache"
	"repro/internal/swapsim"
	"repro/internal/sweep"
	"repro/internal/timeline"
	"repro/internal/utility"
)

// ratePanels are the exchange rates of the paper's three-panel utility
// figures (Figs. 3, 4 and 7).
var ratePanels = []float64{1.6, 2.0, 2.4}

// contStop is one grid point of a cont-vs-stop utility curve.
type contStop struct {
	cont, stop float64
}

// scanTiled evaluates eval across a grid through the sweep engine's tiled
// API: each worker streams a contiguous block of grid points through eval,
// keeping the underlying model's solve memos hot for the whole block instead
// of dispatching one task per point.
func scanTiled[T any](o Opts, grid []float64, eval func(x float64) (T, error)) ([]T, error) {
	return sweep.MapTiles(context.Background(), len(grid), o.Workers, 0, func(lo, hi int, out []T) error {
		for j := lo; j < hi; j++ {
			pt, err := eval(grid[j])
			if err != nil {
				return err
			}
			out[j-lo] = pt
		}
		return nil
	})
}

// scanContStop evaluates a cont/stop utility pair across a grid and splits
// the results into the two plot series.
func scanContStop(o Opts, grid []float64, eval func(x float64) (contStop, error)) (cont, stop []float64, err error) {
	pts, err := scanTiled(o, grid, eval)
	if err != nil {
		return nil, nil, err
	}
	cont = make([]float64, len(pts))
	stop = make([]float64, len(pts))
	for i, pt := range pts {
		cont[i], stop[i] = pt.cont, pt.stop
	}
	return cont, stop, nil
}

// TableI reproduces Table I (expected balance change by swap) and verifies
// it end-to-end: an honest protocol run on the chain simulator must realise
// exactly those deltas.
func TableI(p utility.Params, _ Opts) ([]Figure, error) {
	const pstar = 2.0
	out, err := swapsim.Run(swapsim.Config{
		Params:   p,
		Strategy: agent.HonestStrategy(pstar),
		Seed:     1,
	})
	if err != nil {
		return nil, err
	}
	f := Figure{
		ID:    "tableI",
		Title: "Table I: agents' expected balance change by swap (expected vs simulated)",
		TableHeader: []string{
			"Agent", "on Chain_a (expected)", "on Chain_a (simulated)",
			"on Chain_b (expected)", "on Chain_b (simulated)",
		},
		TableRows: [][]string{
			{
				"Alice (A)",
				fmt.Sprintf("%+.2f TokenA", -pstar), fmt.Sprintf("%+.2f TokenA", out.AliceDeltaA),
				"+1.00 TokenB", fmt.Sprintf("%+.2f TokenB", out.AliceDeltaB),
			},
			{
				"Bob (B)",
				fmt.Sprintf("%+.2f TokenA", pstar), fmt.Sprintf("%+.2f TokenA", out.BobDeltaA),
				"-1.00 TokenB", fmt.Sprintf("%+.2f TokenB", out.BobDeltaB),
			},
		},
		Notes: []string{
			fmt.Sprintf("simulated stage: %s, atomic: %v, receipts by t=%.0fh", out.Stage, out.Atomic, out.EndTime),
		},
	}
	if !out.Success {
		return nil, fmt.Errorf("figures: honest run failed: %+v", out.Stage)
	}
	return []Figure{f}, nil
}

// TableIII lists the default parameter values.
func TableIII(p utility.Params, _ Opts) ([]Figure, error) {
	f := Figure{
		ID:          "tableIII",
		Title:       "Table III: default value of parameters",
		TableHeader: []string{"Parameter", "Value", "Unit"},
		TableRows: [][]string{
			{"alphaA", fmt.Sprintf("%g", p.Alice.Alpha), "-"},
			{"alphaB", fmt.Sprintf("%g", p.Bob.Alpha), "-"},
			{"rA", fmt.Sprintf("%g", p.Alice.R), "/hour"},
			{"rB", fmt.Sprintf("%g", p.Bob.R), "/hour"},
			{"tauA", fmt.Sprintf("%g", p.Chains.TauA), "hour"},
			{"tauB", fmt.Sprintf("%g", p.Chains.TauB), "hour"},
			{"epsB", fmt.Sprintf("%g", p.Chains.EpsB), "hour"},
			{"P_t0", fmt.Sprintf("%g", p.P0), "TokenA"},
			{"mu", fmt.Sprintf("%g", p.Price.Mu), "/hour"},
			{"sigma", fmt.Sprintf("%g", p.Price.Sigma), "/sqrt(hour)"},
		},
	}
	return []Figure{f}, nil
}

// Fig2 reproduces the swap timelines: the idealized zero-waiting-time
// timeline (Fig. 2b / Eq. 13) and a general one with waits (Fig. 2a).
func Fig2(p utility.Params, _ Opts) ([]Figure, error) {
	ideal, err := timeline.Idealized(p.Chains)
	if err != nil {
		return nil, err
	}
	waited, err := timeline.WithWaits(p.Chains, 1, 2, 1, 0.5)
	if err != nil {
		return nil, err
	}
	row := func(tl timeline.Timeline) []string {
		f := func(v float64) string { return fmt.Sprintf("%.1f", v) }
		return []string{
			f(tl.T0), f(tl.T1), f(tl.T2), f(tl.T3), f(tl.T4),
			f(tl.T5), f(tl.T6), f(tl.T7), f(tl.T8), f(tl.TA), f(tl.TB),
		}
	}
	header := []string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7", "t8", "ta", "tb"}
	fig := Figure{
		ID:          "fig2",
		Title:       "Fig. 2: swap timeline (hours; top row idealized Eq. 13, bottom row with waits 1/2/1/0.5)",
		TableHeader: header,
		TableRows:   [][]string{row(ideal), row(waited)},
		Notes: []string{
			fmt.Sprintf("idealized: t5=tb=%.1f, t6=ta=%.1f, t7=%.1f, t8=%.1f", ideal.T5, ideal.T6, ideal.T7, ideal.T8),
		},
	}
	return []Figure{fig}, nil
}

// Fig3 reproduces Alice's t3 utilities (cont vs stop) for the three panel
// exchange rates, with the cut-off price P̄_t3 in the notes.
func Fig3(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	var out []Figure
	grid := mathx.LinSpace(0.05, 3.0, 60)
	for _, pstar := range ratePanels {
		cont, stop, err := scanContStop(o, grid, func(x float64) (contStop, error) {
			var pt contStop
			var err error
			if pt.cont, err = m.AliceUtilityT3(core.Cont, x, pstar); err != nil {
				return pt, err
			}
			if pt.stop, err = m.AliceUtilityT3(core.Stop, x, pstar); err != nil {
				return pt, err
			}
			return pt, nil
		})
		if err != nil {
			return nil, err
		}
		cut, err := m.CutoffT3(pstar)
		if err != nil {
			return nil, err
		}
		out = append(out, Figure{
			ID:     fmt.Sprintf("fig3-pstar%.1f", pstar),
			Title:  fmt.Sprintf("Fig. 3: Alice's utility at t3, P* = %.1f", pstar),
			XLabel: "Token_b price at t3, P_t3",
			YLabel: "U^A_t3",
			Series: []plot.Series{
				{Name: "U^A_t3(cont)", X: grid, Y: cont},
				{Name: "U^A_t3(stop)", X: grid, Y: stop},
			},
			Notes: []string{fmt.Sprintf("cut-off P̄_t3 = %.4f (Eq. 18)", cut)},
		})
	}
	return out, nil
}

// Fig4 reproduces Bob's t2 utilities (cont vs stop) for the three panel
// exchange rates, with the continuation range (P̲_t2, P̄_t2) in the notes.
func Fig4(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	var out []Figure
	grid := mathx.LinSpace(0.05, 3.0, 60)
	for _, pstar := range ratePanels {
		cont, stop, err := scanContStop(o, grid, func(x float64) (contStop, error) {
			var pt contStop
			var err error
			if pt.cont, err = m.BobUtilityT2(core.Cont, x, pstar); err != nil {
				return pt, err
			}
			if pt.stop, err = m.BobUtilityT2(core.Stop, x, pstar); err != nil {
				return pt, err
			}
			return pt, nil
		})
		if err != nil {
			return nil, err
		}
		iv, ok, err := m.ContRangeT2(pstar)
		if err != nil {
			return nil, err
		}
		note := "no continuation range (B never locks)"
		if ok {
			note = fmt.Sprintf("continuation range (P̲_t2, P̄_t2) = (%.4f, %.4f)", iv.Lo, iv.Hi)
		}
		out = append(out, Figure{
			ID:     fmt.Sprintf("fig4-pstar%.1f", pstar),
			Title:  fmt.Sprintf("Fig. 4: Bob's utility at t2, P* = %.1f", pstar),
			XLabel: "Token_b price at t2, P_t2",
			YLabel: "U^B_t2",
			Series: []plot.Series{
				{Name: "U^B_t2(cont)", X: grid, Y: cont},
				{Name: "U^B_t2(stop)", X: grid, Y: stop},
			},
			Notes: []string{note},
		})
	}
	return out, nil
}

// Fig5 reproduces Alice's t1 utilities over the exchange rate, with the
// feasible range (P̲*, P̄*) of Eq. 29 in the notes.
func Fig5(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	grid := mathx.LinSpace(0.1, 3.0, 59)
	cont, stop, err := scanContStop(o, grid, func(pstar float64) (contStop, error) {
		c, err := m.AliceUtilityT1(core.Cont, pstar)
		return contStop{cont: c, stop: pstar}, err
	})
	if err != nil {
		return nil, err
	}
	rng, ok, err := m.FeasibleRateRange()
	if err != nil {
		return nil, err
	}
	note := "no feasible exchange rate (swap never initiated)"
	if ok {
		note = fmt.Sprintf("feasible range (P̲*, P̄*) = (%.4f, %.4f); paper Eq. 29: (1.5, 2.5)", rng.Lo, rng.Hi)
	}
	return []Figure{{
		ID:     "fig5",
		Title:  "Fig. 5: Alice's utility at t1 vs exchange rate P*",
		XLabel: "Exchange rate P*",
		YLabel: "U^A_t1",
		Series: []plot.Series{
			{Name: "U^A_t1(cont)", X: grid, Y: cont},
			{Name: "U^A_t1(stop)", X: grid, Y: stop},
		},
		Notes: []string{note},
	}}, nil
}

// fig6Panel describes one sensitivity panel of Fig. 6.
type fig6Panel struct {
	id     string
	label  string
	values []float64
	with   func(utility.Params, float64) utility.Params
}

// fig6Panels lists the eight swept parameters with the paper's values.
func fig6Panels() []fig6Panel {
	return []fig6Panel{
		{"alphaA", "αA", []float64{0.1, 0.2, 0.3, 0.4}, func(p utility.Params, v float64) utility.Params { return p.WithAliceAlpha(v) }},
		{"alphaB", "αB", []float64{0.1, 0.2, 0.3, 0.4}, func(p utility.Params, v float64) utility.Params { return p.WithBobAlpha(v) }},
		{"rA", "rA", []float64{0.005, 0.01, 0.015, 0.02}, func(p utility.Params, v float64) utility.Params { return p.WithAliceR(v) }},
		{"rB", "rB", []float64{0.005, 0.01, 0.02, 0.03}, func(p utility.Params, v float64) utility.Params { return p.WithBobR(v) }},
		{"tauA", "τa", []float64{1, 3, 5, 7}, func(p utility.Params, v float64) utility.Params { return p.WithTauA(v) }},
		{"tauB", "τb", []float64{2, 4, 6, 8}, func(p utility.Params, v float64) utility.Params { return p.WithTauB(v) }},
		{"mu", "µ", []float64{-0.002, 0, 0.002, 0.004}, func(p utility.Params, v float64) utility.Params { return p.WithMu(v) }},
		{"sigma", "σ", []float64{0.05, 0.1, 0.15, 0.2}, func(p utility.Params, v float64) utility.Params { return p.WithSigma(v) }},
	}
}

// Fig6 reproduces the eight success-rate sensitivity panels: SR(P*) curves
// for four values of each parameter, with per-value t1-viability flags
// (the paper marks non-viable values with □). The 8×4 curves are flattened
// into one (curve × grid) index space and tiled, so each worker resolves
// its curve's solvecache model once per block and streams grid points over
// the model's warm solve memos.
func Fig6(p utility.Params, o Opts) ([]Figure, error) {
	grid := mathx.LinSpace(0.2, 3.2, 41)
	panels := fig6Panels()

	// Flatten the panel×value nesting into one task list so small panels
	// cannot starve the pool. The flat index math requires a uniform value
	// count per panel.
	nVals := len(panels[0].values)
	for _, panel := range panels {
		if len(panel.values) != nVals {
			return nil, fmt.Errorf("figures: fig6 panel %s has %d values, want %d", panel.id, len(panel.values), nVals)
		}
	}
	nCurves := len(panels) * nVals
	modelFor := func(c int) (*core.Model, error) {
		panel := panels[c/nVals]
		return solvecache.SharedModel(panel.with(p, panel.values[c%nVals]))
	}
	// One tile per curve: a tile shares a single model lookup across the
	// whole 41-point scan. The inner loop still re-resolves at curve
	// boundaries so any tile size remains correct.
	ys, err := sweep.MapTiles(context.Background(), nCurves*len(grid), o.Workers, len(grid),
		func(lo, hi int, out []float64) error {
			for j := lo; j < hi; {
				c := j / len(grid)
				end := (c + 1) * len(grid)
				if end > hi {
					end = hi
				}
				m, err := modelFor(c)
				if err != nil {
					return err
				}
				for ; j < end; j++ {
					sr, err := m.SuccessRate(grid[j%len(grid)])
					if err != nil {
						return err
					}
					out[j-lo] = sr
				}
			}
			return nil
		})
	if err != nil {
		return nil, err
	}
	type curveMeta struct {
		viable bool
		rng    mathx.Interval
	}
	metas, err := sweep.Map(context.Background(), nCurves, o.Workers, func(c int) (curveMeta, error) {
		m, err := modelFor(c)
		if err != nil {
			return curveMeta{}, err
		}
		rng, viable, err := m.FeasibleRateRange()
		if err != nil {
			return curveMeta{}, err
		}
		return curveMeta{viable: viable, rng: rng}, nil
	})
	if err != nil {
		return nil, err
	}

	var out []Figure
	for pi, panel := range panels {
		fig := Figure{
			ID:     "fig6-" + panel.id,
			Title:  fmt.Sprintf("Fig. 6: success rate SR(P*) sweeping %s", panel.label),
			XLabel: "Exchange rate P*",
			YLabel: "SR",
		}
		for vi, v := range panel.values {
			c := pi*nVals + vi
			cys := ys[c*len(grid) : (c+1)*len(grid)]
			name := fmt.Sprintf("%s=%g", panel.label, v)
			fig.Series = append(fig.Series, plot.Series{Name: name, X: grid, Y: cys})
			if metas[c].viable {
				maxSR := 0.0
				for _, y := range cys {
					maxSR = math.Max(maxSR, y)
				}
				fig.Notes = append(fig.Notes, fmt.Sprintf(
					"%s: viable, (P̲*, P̄*) = (%.3f, %.3f), max SR on grid = %.3f",
					name, metas[c].rng.Lo, metas[c].rng.Hi, maxSR))
			} else {
				fig.Notes = append(fig.Notes, fmt.Sprintf("%s: NON-VIABLE (□ in the paper: swap never initiated)", name))
			}
		}
		out = append(out, fig)
	}
	return out, nil
}
