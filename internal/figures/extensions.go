package figures

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/plot"
	"repro/internal/solvecache"
	"repro/internal/utility"
)

// collateralPanels are the deposit levels of Figs. 7–9.
var collateralPanels = []float64{0.01, 0.1}

// Fig7 reproduces Bob's t2 utilities in the collateral game for
// Q ∈ {0.01, 0.1} and the three panel rates, with the indifference points
// (1 or 3 of them) in the notes.
func Fig7(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	var out []Figure
	grid := mathx.LinSpace(0.05, 3.0, 60)
	for _, q := range collateralPanels {
		col, err := m.Collateral(q)
		if err != nil {
			return nil, err
		}
		for _, pstar := range ratePanels {
			cont, stop, err := scanContStop(o, grid, func(x float64) (contStop, error) {
				var pt contStop
				var err error
				if pt.cont, err = col.BobUtilityT2(core.Cont, x, pstar); err != nil {
					return pt, err
				}
				if pt.stop, err = col.BobUtilityT2(core.Stop, x, pstar); err != nil {
					return pt, err
				}
				return pt, nil
			})
			if err != nil {
				return nil, err
			}
			set, err := col.ContSetT2(pstar)
			if err != nil {
				return nil, err
			}
			out = append(out, Figure{
				ID:     fmt.Sprintf("fig7-q%g-pstar%.1f", q, pstar),
				Title:  fmt.Sprintf("Fig. 7: Bob's utility at t2 with collateral Q = %g, P* = %.1f", q, pstar),
				XLabel: "Token_b price at t2, P_t2",
				YLabel: "U^B_t2",
				Series: []plot.Series{
					{Name: "U^B_t2,c(cont)", X: grid, Y: cont},
					{Name: "U^B_t2(stop)", X: grid, Y: stop},
				},
				Notes: []string{
					fmt.Sprintf("continuation set 𝒫_t2 = %v (%d interval(s) → %d indifference point(s))",
						set, len(set.Intervals()), indifferenceCount(set)),
				},
			})
		}
	}
	return out, nil
}

// indifferenceCount counts interior indifference points of a continuation
// set whose lowest interval starts at the scan floor (price ≈ 0).
func indifferenceCount(set mathx.IntervalSet) int {
	ivs := set.Intervals()
	if len(ivs) == 0 {
		return 0
	}
	// Each interval contributes two edges; the near-zero lower edge of the
	// first interval is not an indifference point.
	return 2*len(ivs) - 1
}

// Fig8 reproduces both agents' t1 utilities in the collateral game over the
// exchange rate, with each agent's engagement set in the notes.
func Fig8(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	var out []Figure
	grid := mathx.LinSpace(0.1, 3.0, 59)
	type point struct {
		contA, stopA, contB, stopB float64
	}
	for _, q := range collateralPanels {
		col, err := m.Collateral(q)
		if err != nil {
			return nil, err
		}
		pts, err := scanTiled(o, grid, func(pstar float64) (point, error) {
			var pt point
			var err error
			if pt.contA, err = col.AliceUtilityT1(core.Cont, pstar); err != nil {
				return pt, err
			}
			if pt.stopA, err = col.AliceUtilityT1(core.Stop, pstar); err != nil {
				return pt, err
			}
			if pt.contB, err = col.BobUtilityT1(core.Cont, pstar); err != nil {
				return pt, err
			}
			if pt.stopB, err = col.BobUtilityT1(core.Stop, pstar); err != nil {
				return pt, err
			}
			return pt, nil
		})
		if err != nil {
			return nil, err
		}
		contA := make([]float64, len(pts))
		stopA := make([]float64, len(pts))
		contB := make([]float64, len(pts))
		stopB := make([]float64, len(pts))
		for i, pt := range pts {
			contA[i], stopA[i], contB[i], stopB[i] = pt.contA, pt.stopA, pt.contB, pt.stopB
		}
		fa := col.FeasibleRatesAlice()
		fb := col.FeasibleRatesBob()
		out = append(out, Figure{
			ID:     fmt.Sprintf("fig8-q%g", q),
			Title:  fmt.Sprintf("Fig. 8: Alice's and Bob's utility at t1 with collateral Q = %g", q),
			XLabel: "Exchange rate P*",
			YLabel: "U_t1",
			Series: []plot.Series{
				{Name: "U^A_t1,c(cont)", X: grid, Y: contA},
				{Name: "U^A_t1,c(stop)", X: grid, Y: stopA},
				{Name: "U^B_t1,c(cont)", X: grid, Y: contB},
				{Name: "U^B_t1,c(stop)", X: grid, Y: stopB},
			},
			Notes: []string{
				fmt.Sprintf("Alice engages on 𝒫^A = %v", fa),
				fmt.Sprintf("Bob engages on 𝒫^B = %v", fb),
				fmt.Sprintf("intersection (both engage) = %v", fa.Intersect(fb)),
				fmt.Sprintf("union (as printed in §IV.A.4) = %v", fa.Union(fb)),
			},
		})
	}
	return out, nil
}

// Fig9 reproduces the success rate under collateral for Q ∈ {0, 0.01, 0.1}.
func Fig9(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	grid := mathx.LinSpace(0.2, 3.2, 41)
	fig := Figure{
		ID:     "fig9",
		Title:  "Fig. 9: success rate SR(P*) with collateral",
		XLabel: "Exchange rate P*",
		YLabel: "SR",
	}
	for _, q := range []float64{0, 0.01, 0.1} {
		col, err := m.Collateral(q)
		if err != nil {
			return nil, err
		}
		ys, err := scanTiled(o, grid, func(pstar float64) (float64, error) {
			return col.SuccessRate(pstar)
		})
		if err != nil {
			return nil, err
		}
		maxSR := 0.0
		for _, sr := range ys {
			maxSR = math.Max(maxSR, sr)
		}
		name := fmt.Sprintf("Q=%g", q)
		if q == 0 {
			name = "Q=0 (basic setup)"
		}
		fig.Series = append(fig.Series, plot.Series{Name: name, X: grid, Y: ys})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: max SR on grid = %.3f", name, maxSR))
	}
	return []Figure{fig}, nil
}

// Fig10a reproduces B's optimal lock amount X*(P_t2) for the three
// committed amounts, under the holdings budget (DESIGN.md deviation 6).
func Fig10a(p utility.Params, budget float64, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	u, err := m.UncertainWithBudget(budget)
	if err != nil {
		return nil, err
	}
	grid := mathx.LinSpace(0.25, 12, 48)
	fig := Figure{
		ID:     "fig10a",
		Title:  fmt.Sprintf("Fig. 10a: optimal Token_b amount X* for Bob (budget %g)", budget),
		XLabel: "Token_b price at t2, P_t2",
		YLabel: "X*",
	}
	for _, a := range []float64{0.02, 4, 8.91} {
		ys, err := scanTiled(o, grid, func(y float64) (float64, error) {
			x, _, err := u.OptimalLockB(y, a)
			return x, err
		})
		if err != nil {
			return nil, err
		}
		peak := 0.0
		for _, x := range ys {
			peak = math.Max(peak, x)
		}
		fig.Series = append(fig.Series, plot.Series{
			Name: fmt.Sprintf("P*=%.2f", a), X: grid, Y: ys,
		})
		fig.Notes = append(fig.Notes, fmt.Sprintf("P*=%.2f: peak X* = %.3f", a, peak))
	}
	fig.Notes = append(fig.Notes,
		"unconstrained Eq. 44 gives X* ∝ 1/P_t2 (no hump); see DESIGN.md deviation 6")
	return []Figure{fig}, nil
}

// Fig10b reproduces A's excess utility at t1 over the committed amount,
// with the break-even range and optimum in the notes.
func Fig10b(p utility.Params, budget float64, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	u, err := m.UncertainWithBudget(budget)
	if err != nil {
		return nil, err
	}
	grid := mathx.LinSpace(0.1, 12, 40)
	ys, err := scanTiled(o, grid, func(a float64) (float64, error) {
		return u.AliceExcessUtilityT1(a)
	})
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "fig10b",
		Title:  fmt.Sprintf("Fig. 10b: Alice's excess utility at t1 (budget %g)", budget),
		XLabel: "Amount Token_a locked, P*",
		YLabel: "U^A_t1,x",
		Series: []plot.Series{{Name: "U^A_t1,x", X: grid, Y: ys}},
	}
	if rng, ok, err := u.BreakEvenRange(14); err != nil {
		return nil, err
	} else if ok {
		fig.Notes = append(fig.Notes, fmt.Sprintf("break-even range (P̲*, P̄*) = (%.3f, %.3f)", rng.Lo, rng.Hi))
	}
	aStar, exStar, err := u.OptimalLockA(14)
	if err != nil {
		return nil, err
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("optimal commitment a* = %.3f with excess utility %.4f", aStar, exStar))
	return []Figure{fig}, nil
}

// Fig11 compares the success rate of the basic setup against the
// uncertain-exchange-rate game (both capped and unconstrained responders).
func Fig11(p utility.Params, budget float64, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	uCap, err := m.UncertainWithBudget(budget)
	if err != nil {
		return nil, err
	}
	uFree := m.Uncertain()
	grid := mathx.LinSpace(0.25, 8, 32)
	type point struct {
		basic, capped, free float64
	}
	pts, err := scanTiled(o, grid, func(a float64) (point, error) {
		var pt point
		var err error
		if pt.basic, err = m.SuccessRate(a); err != nil {
			return pt, err
		}
		if pt.capped, err = uCap.SuccessRate(a); err != nil {
			return pt, err
		}
		if pt.free, err = uFree.SuccessRate(a); err != nil {
			return pt, err
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	basic := make([]float64, len(pts))
	capped := make([]float64, len(pts))
	free := make([]float64, len(pts))
	maxBasic, maxCapped := 0.0, 0.0
	for i, pt := range pts {
		basic[i], capped[i], free[i] = pt.basic, pt.capped, pt.free
		maxBasic = math.Max(maxBasic, pt.basic)
		maxCapped = math.Max(maxCapped, pt.capped)
	}
	fig := Figure{
		ID:     "fig11",
		Title:  "Fig. 11: success rate, basic setup vs uncertain exchange rate",
		XLabel: "Amount Token_a locked by Alice, P*",
		YLabel: "SR",
		Series: []plot.Series{
			{Name: "basic setup", X: grid, Y: basic},
			{Name: fmt.Sprintf("uncertain exchange (budget %g)", budget), X: grid, Y: capped},
			{Name: "uncertain exchange (unconstrained Eq. 44)", X: grid, Y: free},
		},
		Notes: []string{
			fmt.Sprintf("max SR: basic %.3f, uncertain (budget) %.3f, uncertain (unconstrained) %.3f",
				maxBasic, maxCapped, free[0]),
			"dynamic amounts dominate the basic game across the locked-amount axis (§IV.B / §V.A)",
		},
	}
	return []Figure{fig}, nil
}
