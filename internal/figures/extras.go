package figures

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/packetized"
	"repro/internal/plot"
	"repro/internal/qmc"
	"repro/internal/repeated"
	"repro/internal/solvecache"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// Uncertainty quantifies the incomplete-information variant announced in
// the paper's contribution list (§I.B, "we study the game with uncertainty
// in counterparties' success premium"): SR(P*) under mean-preserving
// spreads of Alice's belief about αB.
func Uncertainty(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	grid := mathx.LinSpace(1.4, 2.8, 29)
	spreads := []struct {
		name  string
		prior core.TypePrior
	}{
		{"known αB=0.3", core.PointPrior(0.3)},
		{"αB∈{0.2,0.4}", core.TypePrior{Values: []float64{0.2, 0.4}, Probs: []float64{0.5, 0.5}}},
		{"αB∈{0.1,0.5}", core.TypePrior{Values: []float64{0.1, 0.5}, Probs: []float64{0.5, 0.5}}},
		{"αB∈{0.05,0.55}", core.TypePrior{Values: []float64{0.05, 0.55}, Probs: []float64{0.5, 0.5}}},
	}
	fig := Figure{
		ID:     "uncertainty",
		Title:  "Extension: SR under uncertainty about Bob's success premium (mean fixed at 0.3)",
		XLabel: "Exchange rate P*",
		YLabel: "SR (conditional on initiation)",
	}
	for _, sp := range spreads {
		b, err := m.Bayesian(core.PointPrior(p.Alice.Alpha), sp.prior)
		if err != nil {
			return nil, err
		}
		ys, err := scanTiled(o, grid, func(pstar float64) (float64, error) {
			sr, ok, err := b.SuccessRate(pstar)
			if err != nil || !ok {
				return 0, err
			}
			return sr, nil
		})
		if err != nil {
			return nil, err
		}
		atFair := ys[len(grid)/2]
		fig.Series = append(fig.Series, plot.Series{Name: sp.name, X: grid, Y: ys})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: SR at mid-grid = %.4f", sp.name, atFair))
	}
	return []Figure{fig}, nil
}

// Reputation traces the repeated-game extension (§V.B): per-round quoting
// and success under three reputation regimes with a shared price path.
func Reputation(p utility.Params, _ Opts) ([]Figure, error) {
	regimes := []struct {
		name string
		cfg  repeated.Config
	}{
		{"static", repeated.Config{Params: p, Rounds: 150, GapHours: 24, Seed: 11}},
		{"fragile", repeated.Config{Params: p, Rounds: 150, GapHours: 24, Seed: 11,
			ReputationLoss: 0.2, AlphaMax: 0.6}},
		{"forgiving", repeated.Config{Params: p, Rounds: 150, GapHours: 24, Seed: 11,
			ReputationLoss: 0.2, ReputationGain: 0.02, IdleRecovery: 0.15, AlphaMax: 0.6}},
	}
	fig := Figure{
		ID:     "reputation",
		Title:  "Extension: Alice's reputation αA over repeated swaps (150 rounds)",
		XLabel: "Round",
		YLabel: "αA entering the round",
	}
	for _, reg := range regimes {
		res, err := repeated.Play(reg.cfg)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(res.Rounds))
		ys := make([]float64, len(res.Rounds))
		for i, r := range res.Rounds {
			xs[i] = float64(r.Index)
			ys[i] = r.AlphaA
		}
		fig.Series = append(fig.Series, plot.Series{Name: reg.name, X: xs, Y: ys})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %s", reg.name, res.CooperationSummary()))
	}
	return []Figure{fig}, nil
}

// Packetized compares the single-shot HTLC swap against the packetized
// protocol of the authors' companion work ([20] in §II): expected completed
// fraction and full-completion probability versus the number of packets,
// with and without per-packet re-quoting.
func Packetized(p utility.Params, o Opts) ([]Figure, error) {
	ns := []float64{1, 2, 4, 8, 16}
	// The artifact defaults to the sobol sampler at a quarter of the pseudo
	// run count: the low-discrepancy points cover the plotted precision
	// (two decimal places at chart resolution, four in the notes) with a
	// conservative i.i.d. standard error under 0.004. An explicit -sampler
	// pseudo restores the historical 20000-run pseudo stream.
	mode := o.Sampler
	runs := 20000
	if mode == "" {
		mode = qmc.ModeSobol
	}
	if mode == qmc.ModeSobol {
		runs = 5000
	}
	fig := Figure{
		ID:     "packetized",
		Title:  "Related work [20]: packetized payments vs single-shot HTLC swap (P*=2)",
		XLabel: "Packets n",
		YLabel: "Probability / fraction",
	}
	kinds := []struct {
		name      string
		requote   bool
		continue_ bool
		metric    func(packetized.Result) float64
	}{
		{"expected fraction (fixed rate, abort)", false, false, func(r packetized.Result) float64 { return r.ExpectedFraction }},
		{"full completion (fixed rate, abort)", false, false, func(r packetized.Result) float64 { return r.FullCompletion.P }},
		{"expected fraction (re-quoted, abort)", true, false, func(r packetized.Result) float64 { return r.ExpectedFraction }},
		{"expected fraction (re-quoted, continue)", true, true, func(r packetized.Result) float64 { return r.ExpectedFraction }},
	}
	// The four plotted series draw on three distinct simulation configs (the
	// two fixed-rate series read different metrics of the same runs), so each
	// distinct (requote, continue) pair is simulated once per packet count.
	configs := []struct{ requote, continue_ bool }{
		{false, false},
		{true, false},
		{true, true},
	}
	cfgIdx := func(requote, cont bool) int {
		for i, c := range configs {
			if c.requote == requote && c.continue_ == cont {
				return i
			}
		}
		return -1
	}
	results, err := sweep.Map(context.Background(), len(configs)*len(ns), o.Workers,
		func(k int) (packetized.Result, error) {
			c := configs[k/len(ns)]
			return packetized.Run(packetized.Config{
				Params:               p,
				PStar:                2.0,
				Packets:              int(ns[k%len(ns)]),
				Requote:              c.requote,
				ContinueAfterFailure: c.continue_,
				Runs:                 runs,
				Seed:                 77,
				Sampler:              mode,
			})
		})
	if err != nil {
		return nil, err
	}
	for _, k := range kinds {
		ci := cfgIdx(k.requote, k.continue_)
		ys := make([]float64, len(ns))
		for i := range ns {
			ys[i] = k.metric(results[ci*len(ns)+i])
		}
		fig.Series = append(fig.Series, plot.Series{Name: k.name, X: ns, Y: ys})
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s at n=16: %.4f", k.name, ys[len(ys)-1]))
	}
	fig.Notes = append(fig.Notes, "per-round exposure falls as P*/n: 2.0 → 0.125 across the axis")
	fig.Notes = append(fig.Notes, fmt.Sprintf("sampler: %s (%d runs per config)", mode, runs))
	return []Figure{fig}, nil
}
