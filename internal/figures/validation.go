package figures

import (
	"context"
	"fmt"

	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/plot"
	"repro/internal/solvecache"
	"repro/internal/swapsim"
	"repro/internal/sweep"
	"repro/internal/utility"
)

// MCValidation cross-checks the analytic success rate (Eq. 31 / Eq. 40)
// against Monte Carlo execution of the full protocol on the ledger
// simulator — the repository's end-to-end validation artifact (not a paper
// figure; the paper's analysis is purely numerical).
func MCValidation(p utility.Params, runs int, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	type config struct {
		label string
		pstar float64
		q     float64
	}
	configs := []config{
		{"basic P*=1.8", 1.8, 0},
		{"basic P*=2.0", 2.0, 0},
		{"basic P*=2.2", 2.2, 0},
		{"collateral Q=0.01 P*=2.0", 2.0, 0.01},
		{"collateral Q=0.1 P*=2.0", 2.0, 0.1},
	}
	scale := fmt.Sprintf("%d runs each", runs)
	if o.MCCIWidth > 0 {
		scale = fmt.Sprintf("adaptive, ±%g target, cap %d runs", o.MCCIWidth, runs)
	}
	fig := Figure{
		ID:    "montecarlo",
		Title: fmt.Sprintf("Validation: analytic SR vs protocol Monte Carlo (%s)", scale),
		TableHeader: []string{
			"Configuration", "Analytic SR", "MC SR", "Wilson 95% CI", "Agrees",
		},
	}
	sawViolation := false
	for i, cfg := range configs {
		var analytic float64
		var strat core.Strategy
		if cfg.q == 0 {
			if analytic, err = m.SuccessRate(cfg.pstar); err != nil {
				return nil, err
			}
			if strat, err = m.Strategy(cfg.pstar); err != nil {
				return nil, err
			}
		} else {
			col, err := m.Collateral(cfg.q)
			if err != nil {
				return nil, err
			}
			if analytic, err = col.SuccessRate(cfg.pstar); err != nil {
				return nil, err
			}
			if strat, err = col.Strategy(cfg.pstar); err != nil {
				return nil, err
			}
		}
		res, err := swapsim.MonteCarlo(swapsim.MCConfig{
			Config: swapsim.Config{
				Params:     p,
				Strategy:   strat,
				Collateral: cfg.q,
				Seed:       9000 + int64(i)*100000,
				Sampler:    o.Sampler,
			},
			Runs:      runs,
			Workers:   o.Workers,
			CIWidth:   o.MCCIWidth,
			ChunkSize: o.MCChunk,
			MaxPaths:  o.MCMaxPaths,
		})
		if err != nil {
			return nil, err
		}
		agrees := analytic >= res.SuccessRate.Lo-0.01 && analytic <= res.SuccessRate.Hi+0.01
		fig.TableRows = append(fig.TableRows, []string{
			cfg.label,
			fmt.Sprintf("%.4f", analytic),
			fmt.Sprintf("%.4f", res.SuccessRate.P),
			fmt.Sprintf("[%.4f, %.4f]", res.SuccessRate.Lo, res.SuccessRate.Hi),
			fmt.Sprintf("%v", agrees),
		})
		if res.Stopped {
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s: adaptive stop after %d paths (CI half-width target %g)", cfg.label, res.Paths, o.MCCIWidth))
		}
		if res.Violations > 0 {
			sawViolation = true
			fig.Notes = append(fig.Notes, fmt.Sprintf("%s: %d atomicity violations (unexpected!)", cfg.label, res.Violations))
		}
	}
	if !sawViolation {
		fig.Notes = append(fig.Notes, "no atomicity violations in any run (expected without failure injection)")
	}
	fig.Notes = append(fig.Notes, fmt.Sprintf("sampler: %s", o.Sampler))
	return []Figure{fig}, nil
}

// BaselineComparison contrasts the paper's two-sided success rate with the
// related-work one-sided (initiator-only optionality) model of §II: the
// vertical gap is the failure risk added by B's rationality, the paper's
// headline observation.
func BaselineComparison(p utility.Params, o Opts) ([]Figure, error) {
	m, err := solvecache.SharedModel(p)
	if err != nil {
		return nil, err
	}
	bl, err := baseline.New(p)
	if err != nil {
		return nil, err
	}
	grid := mathx.LinSpace(0.2, 3.2, 41)
	type point struct {
		two, one float64
	}
	pts, err := sweep.Over(context.Background(), o.Workers, grid, func(_ int, pstar float64) (point, error) {
		var pt point
		var err error
		if pt.two, err = m.SuccessRate(pstar); err != nil {
			return pt, err
		}
		if pt.one, err = bl.SuccessRate(pstar); err != nil {
			return pt, err
		}
		return pt, nil
	})
	if err != nil {
		return nil, err
	}
	twoSided := make([]float64, len(pts))
	oneSided := make([]float64, len(pts))
	maxGap := 0.0
	for i, pt := range pts {
		twoSided[i], oneSided[i] = pt.two, pt.one
		if gap := pt.one - pt.two; gap > maxGap {
			maxGap = gap
		}
	}
	prem, err := bl.OptionPremium(2.0)
	if err != nil {
		return nil, err
	}
	oneFair, err := bl.SuccessRate(2.0)
	if err != nil {
		return nil, err
	}
	twoFair, err := m.SuccessRate(2.0)
	if err != nil {
		return nil, err
	}
	fig := Figure{
		ID:     "baseline",
		Title:  "Related work: one-sided optionality (Han et al.) vs this paper's two-sided game",
		XLabel: "Exchange rate P*",
		YLabel: "SR",
		Series: []plot.Series{
			{Name: "two-sided game (this paper, Eq. 31)", X: grid, Y: twoSided},
			{Name: "one-sided baseline (B always locks)", X: grid, Y: oneSided},
		},
		Notes: []string{
			fmt.Sprintf("SR at the fair rate P*=2: one-sided %.3f vs two-sided %.3f (gap %.3f is B's withdrawal risk)",
				oneFair, twoFair, oneFair-twoFair),
			fmt.Sprintf("max SR gap across rates = %.3f (at rates where B never locks, the one-sided model still predicts near-certain success)", maxGap),
			fmt.Sprintf("A's abandonment-option premium at P*=2 (Han et al.'s 'free American option') = %.4f Token_a", prem),
		},
	}
	return []Figure{fig}, nil
}
