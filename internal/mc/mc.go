// Package mc is the repository's streaming Monte Carlo engine: it executes
// a seeded path workload in fixed-size chunks on the internal/sweep worker
// pool, folds each chunk into online (Welford) moment accumulators and a
// streaming stage histogram, and optionally stops adaptively once the
// Wilson 95% confidence interval of the success rate is tight enough.
//
// Determinism contract: path i is seeded with sweep.Seed(Config.Seed, i)
// and chunk results are merged strictly in chunk order, so the full result
// — success counts, stage histogram, and the floating-point Welford moments
// — is bit-identical for a fixed (Seed, ChunkSize) pair at ANY worker
// count. In adaptive mode the stopping chunk is the first chunk boundary
// (scanning prefixes in order) at which the Wilson half-width reaches the
// target, which is itself a pure function of (Seed, ChunkSize); workers
// only decide how many speculative chunks beyond the stopping point are
// computed and discarded. Runners hand the engine reusable per-worker run
// state: each worker slot owns one Runner, paths on a slot run
// sequentially, and a Runner's result must depend only on the path seed.
package mc

import (
	"context"
	"errors"
	"fmt"
	"math"

	"repro/internal/qmc"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// ErrBadConfig reports an invalid engine configuration.
var ErrBadConfig = errors.New("mc: invalid configuration")

// DefaultChunkSize is the chunk size used when Config.ChunkSize is zero:
// large enough to amortise scheduling, small enough that adaptive stopping
// checks the CI at a useful granularity.
const DefaultChunkSize = 256

// Path is the outcome of one simulated path.
type Path struct {
	// Success reports the path's success indicator (the Bernoulli variable
	// whose rate the engine estimates).
	Success bool
	// Atomic reports whether the path kept the protocol's all-or-nothing
	// property; non-atomic paths are tallied as violations.
	Atomic bool
	// Stage is the path's terminal-stage histogram key.
	Stage string
	// Duration feeds the engine's Welford mean/variance accumulator.
	Duration float64
}

// Runner executes paths with reusable internal state. A Runner is used by
// one worker slot at a time (no internal locking needed), and RunPath must
// be a pure function of seed: the engine's determinism contract relies on
// a path's outcome not depending on which slot ran it or what ran before.
type Runner interface {
	// RunPath executes one path for the given seed, reusing internal state.
	RunPath(seed int64) (Path, error)
}

// RunnerFunc adapts a function to the Runner interface (stateless runners,
// tests).
type RunnerFunc func(seed int64) (Path, error)

// RunPath implements Runner.
func (f RunnerFunc) RunPath(seed int64) (Path, error) { return f(seed) }

// IndexedRunner is a Runner that also accepts the path's global index.
// The variance-reduced sampler modes require it: the index determines the
// antithetic pair member (qmc.PairNegated) or the Sobol replicate and
// point (qmc.SobolReplicate, qmc.SobolPoint). RunPathIndexed must remain
// a pure function of (index, seed) under the same contract as RunPath.
type IndexedRunner interface {
	Runner
	RunPathIndexed(index int, seed int64) (Path, error)
}

// IndexedRunnerFunc adapts a function to IndexedRunner (tests); RunPath
// delegates with index 0.
type IndexedRunnerFunc func(index int, seed int64) (Path, error)

// RunPath implements Runner.
func (f IndexedRunnerFunc) RunPath(seed int64) (Path, error) { return f(0, seed) }

// RunPathIndexed implements IndexedRunner.
func (f IndexedRunnerFunc) RunPathIndexed(index int, seed int64) (Path, error) {
	return f(index, seed)
}

// Config parameterises a streaming Monte Carlo estimate.
type Config struct {
	// Seed is the base seed; path i draws from the decorrelated stream
	// sweep.Seed(Seed, i).
	Seed int64
	// MaxPaths is the hard cap on executed paths (> 0). With CIWidth == 0
	// exactly MaxPaths paths run.
	MaxPaths int
	// ChunkSize is the number of paths per chunk (0 = DefaultChunkSize).
	// Together with Seed it fixes the result bit-for-bit.
	ChunkSize int
	// CIWidth, when > 0, enables adaptive stopping: the engine stops at the
	// first chunk boundary where the Wilson 95% half-width of the success
	// rate is <= CIWidth, never exceeding MaxPaths.
	CIWidth float64
	// Workers bounds concurrency; 0 uses all CPUs (see internal/sweep).
	// The worker count never affects the result.
	Workers int
	// NewRunner constructs one reusable Runner per worker slot.
	NewRunner func() (Runner, error)
	// Sampler selects the sampling mode (zero value: pseudo, the golden
	// default — byte-identical to every committed artifact). The
	// variance-reduced modes require runners implementing IndexedRunner:
	// in antithetic mode path i is seeded with sweep.Seed(Seed,
	// qmc.PairBase(i)) so a pair shares its price-path seed, and the
	// adaptive stopper switches from the raw-count Wilson interval to a
	// sampler-aware estimator CI (pair-mean CLT, or a t interval over
	// Sobol replicate means) — the Wilson interval cannot see variance
	// reduction. Antithetic mode additionally requires an even ChunkSize
	// so pairs never straddle a chunk boundary.
	Sampler qmc.Mode
	// OnProgress, when non-nil, is called after each chunk is merged into
	// the running aggregate, with a snapshot of the merged prefix. Calls
	// happen on Run's own goroutine in strict chunk order, so the sequence
	// of snapshots is deterministic per (Seed, ChunkSize) — the stream the
	// RPC layer's swap.simulate subscription forwards. The callback must
	// not block longer than the caller can afford: merging (and in adaptive
	// mode, the stopping decision) waits for it.
	OnProgress func(Progress)
}

// Progress is one streaming snapshot of the merged prefix of a run.
type Progress struct {
	// Paths, Successes and Chunks count the merged prefix.
	Paths, Successes, Chunks int
	// SuccessRate is the running success proportion with its Wilson 95%
	// interval — always the honest raw-count interval, whatever the
	// sampler.
	SuccessRate stats.Proportion
	// Sampler is the run's sampling mode.
	Sampler qmc.Mode
	// EstHalfWidth is the sampler-aware 95% half-width the adaptive
	// stopper compares against CIWidth: the Wilson half-width in pseudo
	// mode, the pair-mean CLT width in antithetic mode, the replicate-t
	// width in sobol mode (+Inf while the estimator is undefined).
	EstHalfWidth float64
	// Stopped reports that the adaptive criterion fired at this snapshot
	// (always false in fixed-N mode).
	Stopped bool
}

// HalfWidth returns the 95% half-width the adaptive stopper uses: the
// Wilson interval in pseudo mode, the sampler-aware estimator interval in
// the variance-reduced modes.
func (p Progress) HalfWidth() float64 {
	if p.Sampler.VarianceReduced() {
		return p.EstHalfWidth
	}
	return (p.SuccessRate.Hi - p.SuccessRate.Lo) / 2
}

// Result aggregates a streaming Monte Carlo estimate.
type Result struct {
	// Paths is the number of paths executed and counted (MaxPaths unless an
	// adaptive stop fired earlier).
	Paths int
	// Successes counts successful paths.
	Successes int
	// Violations counts non-atomic paths.
	Violations int
	// Stages is the terminal-stage histogram.
	Stages map[string]int
	// SuccessRate is the success proportion with its Wilson 95% interval
	// — always the honest raw-count interval, whatever the sampler.
	SuccessRate stats.Proportion
	// Duration accumulates path durations (mean/variance), merged in
	// chunk order so the float result is reproducible.
	Duration stats.Welford
	// Sampler is the run's sampling mode.
	Sampler qmc.Mode
	// EstHalfWidth is the sampler-aware 95% half-width at the end of the
	// run (see Progress.EstHalfWidth).
	EstHalfWidth float64
	// Stopped reports an adaptive early stop (CIWidth reached before
	// MaxPaths).
	Stopped bool
	// Chunks is the number of chunks merged into the result.
	Chunks int
}

// HalfWidth returns the 95% half-width the adaptive stopper uses: the
// Wilson interval in pseudo mode, the sampler-aware estimator interval in
// the variance-reduced modes.
func (r Result) HalfWidth() float64 {
	if r.Sampler.VarianceReduced() {
		return r.EstHalfWidth
	}
	return (r.SuccessRate.Hi - r.SuccessRate.Lo) / 2
}

// chunkResult is one chunk's aggregate, merged into the stream in chunk
// order.
type chunkResult struct {
	n, successes, violations int
	stages                   map[string]int
	dur                      stats.Welford
	// pairs accumulates antithetic pair means (one observation per
	// completed (2k, 2k+1) pair; a MaxPaths-truncated final pair counts
	// as a singleton). Chunks are pair-aligned, so pairs never straddle.
	pairs stats.Welford
	// repSucc/repN count successes and paths per Sobol replicate.
	repSucc, repN [qmc.SobolReplicates]int
}

// Critical values of the sampler-aware estimator intervals.
const (
	// zNormal975 is the two-sided 95% standard normal critical value,
	// used by the antithetic pair-mean CLT interval.
	zNormal975 = 1.9599639845400545
	// tReplicates975 is the two-sided 95% Student-t critical value at
	// qmc.SobolReplicates−1 = 7 degrees of freedom, used by the interval
	// over Sobol replicate means.
	tReplicates975 = 2.3646242510102993
)

// Run executes the workload and streams the aggregation. See the package
// comment for the determinism contract.
func Run(ctx context.Context, cfg Config) (Result, error) {
	switch {
	case cfg.MaxPaths <= 0:
		return Result{}, fmt.Errorf("%w: maxPaths=%d must be > 0", ErrBadConfig, cfg.MaxPaths)
	case cfg.ChunkSize < 0:
		return Result{}, fmt.Errorf("%w: chunkSize=%d must be >= 0", ErrBadConfig, cfg.ChunkSize)
	case cfg.CIWidth < 0 || math.IsNaN(cfg.CIWidth):
		return Result{}, fmt.Errorf("%w: ciWidth=%g must be >= 0", ErrBadConfig, cfg.CIWidth)
	case cfg.NewRunner == nil:
		return Result{}, fmt.Errorf("%w: nil NewRunner", ErrBadConfig)
	}
	mode, err := cfg.Sampler.Canon()
	if err != nil {
		return Result{}, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	chunk := cfg.ChunkSize
	if chunk == 0 {
		chunk = DefaultChunkSize
	}
	if mode == qmc.ModeAntithetic && chunk%2 != 0 {
		return Result{}, fmt.Errorf("%w: antithetic mode needs an even chunk size, got %d", ErrBadConfig, chunk)
	}
	numChunks := (cfg.MaxPaths + chunk - 1) / chunk
	workers := sweep.Workers(cfg.Workers)
	if workers > numChunks {
		workers = numChunks
	}

	// One reusable Runner per worker slot, shared across waves through a
	// free list. The variance-reduced modes need index-aware runners.
	runners := make(chan Runner, workers)
	for i := 0; i < workers; i++ {
		r, err := cfg.NewRunner()
		if err != nil {
			return Result{}, fmt.Errorf("mc: runner %d: %w", i, err)
		}
		if _, ok := r.(IndexedRunner); !ok && mode.VarianceReduced() {
			return Result{}, fmt.Errorf("%w: sampler %s requires a runner implementing IndexedRunner", ErrBadConfig, mode)
		}
		runners <- r
	}
	runChunk := func(c int) (chunkResult, error) {
		r := <-runners
		defer func() { runners <- r }()
		lo, hi := c*chunk, (c+1)*chunk
		if hi > cfg.MaxPaths {
			hi = cfg.MaxPaths
		}
		cr := chunkResult{stages: make(map[string]int)}
		var pairSum float64
		var pairN int
		for i := lo; i < hi; i++ {
			var p Path
			var err error
			switch mode {
			case qmc.ModePseudo:
				p, err = r.RunPath(sweep.Seed(cfg.Seed, i))
			case qmc.ModeAntithetic:
				// Pair members share the price-path seed; the runner
				// flips the odd member's increments by index.
				p, err = r.(IndexedRunner).RunPathIndexed(i, sweep.Seed(cfg.Seed, qmc.PairBase(i)))
			default: // qmc.ModeSobol
				p, err = r.(IndexedRunner).RunPathIndexed(i, sweep.Seed(cfg.Seed, i))
			}
			if err != nil {
				return chunkResult{}, fmt.Errorf("path %d: %w", i, err)
			}
			cr.n++
			if p.Success {
				cr.successes++
			}
			if !p.Atomic {
				cr.violations++
			}
			cr.stages[p.Stage]++
			cr.dur.Add(p.Duration)
			switch mode {
			case qmc.ModeAntithetic:
				if p.Success {
					pairSum++
				}
				pairN++
				if i&1 == 1 || i == hi-1 {
					cr.pairs.Add(pairSum / float64(pairN))
					pairSum, pairN = 0, 0
				}
			case qmc.ModeSobol:
				rep := qmc.SobolReplicate(i)
				cr.repN[rep]++
				if p.Success {
					cr.repSucc[rep]++
				}
			}
		}
		return cr, nil
	}

	// Sampler-aware estimator state, merged strictly in chunk order like
	// every other accumulator, so the adaptive stop stays a pure function
	// of (Seed, ChunkSize).
	var pairs stats.Welford
	var repSucc, repN [qmc.SobolReplicates]int
	estHalf := func() float64 {
		switch mode {
		case qmc.ModeAntithetic:
			if pairs.N < 2 {
				return math.Inf(1)
			}
			return zNormal975 * math.Sqrt(pairs.Var()/float64(pairs.N))
		case qmc.ModeSobol:
			var w stats.Welford
			for rep := 0; rep < qmc.SobolReplicates; rep++ {
				if repN[rep] == 0 {
					return math.Inf(1)
				}
				w.Add(float64(repSucc[rep]) / float64(repN[rep]))
			}
			return tReplicates975 * math.Sqrt(w.Var()/float64(w.N))
		}
		return math.Inf(1)
	}

	// Fixed-N mode runs every chunk in one sweep; adaptive mode dispatches
	// worker-sized waves so the merged prefix can stop the sampling early.
	// A progress hook also forces waves: snapshots must flow while the
	// sampling runs (and cancellation must bite between waves), not arrive
	// in a burst after one monolithic sweep. The merge order — and thus
	// the result — is the same either way.
	wave := numChunks
	if cfg.CIWidth > 0 || cfg.OnProgress != nil {
		wave = workers
	}
	res := Result{Stages: make(map[string]int)}
	for start := 0; start < numChunks && !res.Stopped; start += wave {
		end := start + wave
		if end > numChunks {
			end = numChunks
		}
		crs, err := sweep.Map(ctx, end-start, workers, func(i int) (chunkResult, error) {
			return runChunk(start + i)
		})
		if err != nil {
			return Result{}, fmt.Errorf("mc: %w", err)
		}
		// Merge strictly in chunk order; in adaptive mode check the
		// stopping criterion — Wilson in pseudo mode, the sampler-aware
		// estimator interval otherwise — at every chunk boundary and
		// discard any speculative chunks computed past the stopping point.
		for _, cr := range crs {
			res.Paths += cr.n
			res.Successes += cr.successes
			res.Violations += cr.violations
			for s, n := range cr.stages {
				res.Stages[s] += n
			}
			res.Duration.Merge(cr.dur)
			res.Chunks++
			pairs.Merge(cr.pairs)
			for rep := 0; rep < qmc.SobolReplicates; rep++ {
				repSucc[rep] += cr.repSucc[rep]
				repN[rep] += cr.repN[rep]
			}
			var prop stats.Proportion
			var hw float64
			if cfg.CIWidth > 0 || cfg.OnProgress != nil {
				p, err := stats.NewProportion(res.Successes, res.Paths)
				if err != nil {
					return Result{}, fmt.Errorf("mc: %w", err)
				}
				prop = p
				hw = (prop.Hi - prop.Lo) / 2
				if mode.VarianceReduced() {
					hw = estHalf()
				}
			}
			if cfg.CIWidth > 0 && hw <= cfg.CIWidth {
				res.Stopped = res.Paths < cfg.MaxPaths
			}
			if cfg.OnProgress != nil {
				cfg.OnProgress(Progress{
					Paths: res.Paths, Successes: res.Successes, Chunks: res.Chunks,
					SuccessRate: prop, Sampler: mode, EstHalfWidth: hw, Stopped: res.Stopped,
				})
			}
			if res.Stopped {
				break
			}
		}
	}
	prop, err := stats.NewProportion(res.Successes, res.Paths)
	if err != nil {
		return Result{}, fmt.Errorf("mc: %w", err)
	}
	res.SuccessRate = prop
	res.Sampler = mode
	res.EstHalfWidth = (prop.Hi - prop.Lo) / 2
	if mode.VarianceReduced() {
		res.EstHalfWidth = estHalf()
	}
	return res, nil
}
