package mc_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/mc"
	"repro/internal/stats"
	"repro/internal/sweep"
)

// adaptiveBase is the shared adaptive-mode configuration of these tests:
// a fair-ish Bernoulli workload with a generous cap, stopping at a 0.02
// Wilson half-width. The seed pins a deterministic trajectory for which
// the early-stopped SR lands inside the full-N Wilson interval (the
// containment is a ~50% event over seeds at this cap, so the case is
// seeded, not distributional).
func adaptiveBase() mc.Config {
	return mc.Config{
		Seed:      42,
		MaxPaths:  100000,
		ChunkSize: 200,
		CIWidth:   0.02,
		NewRunner: bernoulli(0.55),
	}
}

func TestAdaptiveStopsAtCITarget(t *testing.T) {
	res, err := mc.Run(context.Background(), adaptiveBase())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("engine never reported an adaptive stop")
	}
	if res.Paths >= 100000 {
		t.Errorf("paths = %d, expected an early stop well below the cap", res.Paths)
	}
	if res.Paths%200 != 0 {
		t.Errorf("paths = %d, want a multiple of the chunk size (stop at a chunk boundary)", res.Paths)
	}
	if hw := res.HalfWidth(); hw > 0.02 {
		t.Errorf("half-width at stop = %g, want <= 0.02", hw)
	}
	// The stop fires at the FIRST qualifying boundary: one chunk earlier
	// the criterion must not hold yet.
	prevPaths := res.Paths - 200
	if prevPaths > 0 {
		prev := adaptiveBase()
		prev.CIWidth = 0 // fixed N: replay the same trajectory one chunk short
		prev.MaxPaths = prevPaths
		prevRes, err := mc.Run(context.Background(), prev)
		if err != nil {
			t.Fatal(err)
		}
		if prevRes.HalfWidth() <= 0.02 {
			t.Errorf("criterion already held one chunk earlier (half-width %g): stop is not the first boundary", prevRes.HalfWidth())
		}
	}
}

func TestAdaptiveNeverExceedsCap(t *testing.T) {
	cfg := adaptiveBase()
	cfg.CIWidth = 1e-6 // unreachable target
	cfg.MaxPaths = 1700
	res, err := mc.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Paths != 1700 {
		t.Errorf("paths = %d, want exactly the cap 1700", res.Paths)
	}
	if res.Stopped {
		t.Error("hitting the cap must not be reported as an adaptive stop")
	}
}

func TestAdaptiveEarlyStopSRInsideFullNInterval(t *testing.T) {
	early, err := mc.Run(context.Background(), adaptiveBase())
	if err != nil {
		t.Fatal(err)
	}
	full := adaptiveBase()
	full.CIWidth = 0 // fixed N at the cap
	ref, err := mc.Run(context.Background(), full)
	if err != nil {
		t.Fatal(err)
	}
	if ref.Paths != full.MaxPaths {
		t.Fatalf("reference run executed %d paths, want %d", ref.Paths, full.MaxPaths)
	}
	if !ref.SuccessRate.Contains(early.SuccessRate.P) {
		t.Errorf("early-stopped SR %.4f outside the full-N Wilson interval [%.4f, %.4f]",
			early.SuccessRate.P, ref.SuccessRate.Lo, ref.SuccessRate.Hi)
	}
	// And both intervals cover the true rate for this seed.
	if !early.SuccessRate.Contains(0.55) || !ref.SuccessRate.Contains(0.55) {
		t.Errorf("true rate 0.55 not covered: early %v, full %v", early.SuccessRate, ref.SuccessRate)
	}
}

func TestAdaptiveDeterministicAcrossWorkers(t *testing.T) {
	var results []mc.Result
	for _, workers := range []int{1, 3, 8, 32} {
		cfg := adaptiveBase()
		cfg.Workers = workers
		res, err := mc.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		results = append(results, res)
	}
	for _, res := range results[1:] {
		// The stopping point AND the merged aggregate (including the
		// Welford float bits) are a function of (seed, chunk-size) only;
		// extra workers merely discard more speculative chunks.
		if !reflect.DeepEqual(results[0], res) {
			t.Errorf("worker count changed the adaptive result:\n  %+v\nvs\n  %+v", results[0], res)
		}
	}
}

// TestAdaptiveStopMatchesSequentialReference recomputes the stopping chunk
// with a plain sequential scan over the same seeded paths and checks the
// engine agrees — the definition of the (seed, chunk-size) contract.
func TestAdaptiveStopMatchesSequentialReference(t *testing.T) {
	cfg := adaptiveBase()
	cfg.Workers = 6
	res, err := mc.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	runner, err := cfg.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	succ, n := 0, 0
	wantPaths := 0
	for i := 0; i < cfg.MaxPaths; i++ {
		p, err := runner.RunPath(sweep.Seed(cfg.Seed, i))
		if err != nil {
			t.Fatal(err)
		}
		n++
		if p.Success {
			succ++
		}
		if n%cfg.ChunkSize == 0 {
			prop, err := stats.NewProportion(succ, n)
			if err != nil {
				t.Fatal(err)
			}
			if (prop.Hi-prop.Lo)/2 <= cfg.CIWidth {
				wantPaths = n
				break
			}
		}
	}
	if wantPaths == 0 {
		t.Fatal("sequential reference never hit the target")
	}
	if res.Paths != wantPaths || res.Successes != succ {
		t.Errorf("engine stopped at %d paths (%d successes), sequential reference at %d (%d)",
			res.Paths, res.Successes, wantPaths, succ)
	}
}
