package mc_test

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/mc"
)

// TestProgressSnapshotsDeterministic pins the OnProgress contract: one
// snapshot per merged chunk, in chunk order, cumulative counts matching the
// final result, and — because merging follows chunk order regardless of
// scheduling — an identical snapshot sequence at any worker count.
func TestProgressSnapshotsDeterministic(t *testing.T) {
	const maxPaths, chunk = 2000, 128
	collect := func(workers int) ([]mc.Progress, mc.Result) {
		var snaps []mc.Progress
		res, err := mc.Run(context.Background(), mc.Config{
			Seed: 11, MaxPaths: maxPaths, ChunkSize: chunk, Workers: workers,
			NewRunner:  bernoulli(0.4),
			OnProgress: func(p mc.Progress) { snaps = append(snaps, p) },
		})
		if err != nil {
			t.Fatalf("Run(workers=%d): %v", workers, err)
		}
		return snaps, res
	}

	snaps1, res1 := collect(1)
	wantChunks := (maxPaths + chunk - 1) / chunk
	if len(snaps1) != wantChunks {
		t.Fatalf("got %d snapshots, want %d (one per chunk)", len(snaps1), wantChunks)
	}
	for i, s := range snaps1 {
		if s.Chunks != i+1 {
			t.Errorf("snapshot %d: Chunks = %d, want %d", i, s.Chunks, i+1)
		}
		if i > 0 && s.Paths <= snaps1[i-1].Paths {
			t.Errorf("snapshot %d: Paths = %d not increasing from %d", i, s.Paths, snaps1[i-1].Paths)
		}
		if s.Stopped {
			t.Errorf("snapshot %d: Stopped in fixed-N mode", i)
		}
		if s.HalfWidth() <= 0 {
			t.Errorf("snapshot %d: half-width = %g, want > 0", i, s.HalfWidth())
		}
	}
	last := snaps1[len(snaps1)-1]
	if last.Paths != res1.Paths || last.Successes != res1.Successes || last.SuccessRate != res1.SuccessRate {
		t.Errorf("final snapshot %+v does not match result (paths=%d successes=%d sr=%+v)",
			last, res1.Paths, res1.Successes, res1.SuccessRate)
	}

	snaps4, res4 := collect(4)
	if !reflect.DeepEqual(snaps1, snaps4) {
		t.Errorf("snapshot stream differs between 1 and 4 workers")
	}
	if res1.SuccessRate != res4.SuccessRate {
		t.Errorf("results differ across worker counts: %+v vs %+v", res1.SuccessRate, res4.SuccessRate)
	}
}

// TestProgressDoesNotPerturbResult checks the hook is observation only:
// with and without OnProgress the result is identical, in both fixed-N and
// adaptive modes.
func TestProgressDoesNotPerturbResult(t *testing.T) {
	for _, ci := range []float64{0, 0.02} {
		base := mc.Config{
			Seed: 3, MaxPaths: 4000, ChunkSize: 64, CIWidth: ci, Workers: 2,
			NewRunner: bernoulli(0.55),
		}
		plain, err := mc.Run(context.Background(), base)
		if err != nil {
			t.Fatalf("Run(ci=%g): %v", ci, err)
		}
		hooked := base
		var calls int
		var lastStopped bool
		hooked.OnProgress = func(p mc.Progress) { calls++; lastStopped = p.Stopped }
		withHook, err := mc.Run(context.Background(), hooked)
		if err != nil {
			t.Fatalf("Run(ci=%g, hook): %v", ci, err)
		}
		if !reflect.DeepEqual(plain, withHook) {
			t.Errorf("ci=%g: result differs with OnProgress:\n%+v\nvs\n%+v", ci, plain, withHook)
		}
		if calls != withHook.Chunks {
			t.Errorf("ci=%g: %d OnProgress calls, want %d (one per merged chunk)", ci, calls, withHook.Chunks)
		}
		if lastStopped != withHook.Stopped {
			t.Errorf("ci=%g: last snapshot Stopped = %v, result %v", ci, lastStopped, withHook.Stopped)
		}
	}
}
