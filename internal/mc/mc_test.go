package mc_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"repro/internal/mc"
	"repro/internal/sweep"
)

// bernoulli returns a stateless synthetic runner: success with probability
// p, a two-bucket stage histogram, and a uniform duration — all a pure
// function of the path seed, as the engine contract requires.
func bernoulli(p float64) func() (mc.Runner, error) {
	return func() (mc.Runner, error) {
		return mc.RunnerFunc(func(seed int64) (mc.Path, error) {
			rng := rand.New(rand.NewSource(seed))
			u := rng.Float64()
			path := mc.Path{Success: u < p, Atomic: true, Duration: 10 * rng.Float64()}
			if path.Success {
				path.Stage = "completed"
			} else {
				path.Stage = "stopped"
			}
			return path, nil
		}), nil
	}
}

func TestRunConfigValidation(t *testing.T) {
	ctx := context.Background()
	ok := bernoulli(0.5)
	cases := []mc.Config{
		{MaxPaths: 0, NewRunner: ok},
		{MaxPaths: -3, NewRunner: ok},
		{MaxPaths: 10, ChunkSize: -1, NewRunner: ok},
		{MaxPaths: 10, CIWidth: -0.1, NewRunner: ok},
		{MaxPaths: 10, CIWidth: math.NaN(), NewRunner: ok},
		{MaxPaths: 10},
	}
	for i, cfg := range cases {
		if _, err := mc.Run(ctx, cfg); !errors.Is(err, mc.ErrBadConfig) {
			t.Errorf("case %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

func TestRunErrorsPropagate(t *testing.T) {
	boom := errors.New("boom")
	// A runner-construction error surfaces immediately.
	_, err := mc.Run(context.Background(), mc.Config{
		MaxPaths:  10,
		NewRunner: func() (mc.Runner, error) { return nil, boom },
	})
	if !errors.Is(err, boom) {
		t.Errorf("construction err = %v, want boom", err)
	}
	// A path error names the failing path.
	_, err = mc.Run(context.Background(), mc.Config{
		MaxPaths:  100,
		ChunkSize: 10,
		Workers:   4,
		NewRunner: func() (mc.Runner, error) {
			return mc.RunnerFunc(func(seed int64) (mc.Path, error) {
				if seed == sweep.Seed(0, 55) {
					return mc.Path{}, boom
				}
				return mc.Path{Atomic: true, Stage: "ok"}, nil
			}), nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("path err = %v, want boom", err)
	}
	if !strings.Contains(err.Error(), "path 55") {
		t.Errorf("err %q does not name the failing path", err)
	}
}

func TestRunFixedNBitIdenticalAcrossWorkers(t *testing.T) {
	base := mc.Config{
		Seed:      99,
		MaxPaths:  2000,
		ChunkSize: 128,
		NewRunner: bernoulli(0.63),
	}
	var results []mc.Result
	for _, workers := range []int{1, 2, 7, 16} {
		cfg := base
		cfg.Workers = workers
		res, err := mc.Run(context.Background(), cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if res.Paths != base.MaxPaths {
			t.Fatalf("workers=%d: paths %d, want %d", workers, res.Paths, base.MaxPaths)
		}
		results = append(results, res)
	}
	for i, res := range results[1:] {
		// reflect.DeepEqual covers the integer tallies AND the bit pattern
		// of the Welford floats: the chunk-order merge is what makes the
		// floating-point aggregate worker-count invariant.
		if !reflect.DeepEqual(results[0], res) {
			t.Errorf("worker count changed the result:\n  %+v\nvs\n  %+v", results[0], res)
		}
		_ = i
	}
}

func TestRunCountsInvariantToChunkSize(t *testing.T) {
	ref := map[string]int{}
	refSucc := 0
	for _, chunk := range []int{1, 3, 100, 512, 5000} {
		res, err := mc.Run(context.Background(), mc.Config{
			Seed:      4,
			MaxPaths:  1500,
			ChunkSize: chunk,
			Workers:   5,
			NewRunner: bernoulli(0.4),
		})
		if err != nil {
			t.Fatalf("chunk=%d: %v", chunk, err)
		}
		if chunk == 1 {
			ref = res.Stages
			refSucc = res.Successes
			continue
		}
		if res.Successes != refSucc || !reflect.DeepEqual(res.Stages, ref) {
			t.Errorf("chunk=%d changed the counts: %d/%v vs %d/%v",
				chunk, res.Successes, res.Stages, refSucc, ref)
		}
	}
}

func TestRunStageHistogramAndViolations(t *testing.T) {
	res, err := mc.Run(context.Background(), mc.Config{
		Seed:      21,
		MaxPaths:  400,
		ChunkSize: 64,
		NewRunner: func() (mc.Runner, error) {
			return mc.RunnerFunc(func(seed int64) (mc.Path, error) {
				rng := rand.New(rand.NewSource(seed))
				u := rng.Float64()
				return mc.Path{
					Success:  u < 0.5,
					Atomic:   u > 0.1, // ~10% violations
					Stage:    "s",
					Duration: 1,
				}, nil
			}), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages["s"] != 400 {
		t.Errorf("stage count %d, want 400", res.Stages["s"])
	}
	if res.Violations == 0 || res.Violations == 400 {
		t.Errorf("violations = %d, want a ~10%% tally", res.Violations)
	}
	if res.SuccessRate.N != 400 || res.SuccessRate.Successes != res.Successes {
		t.Errorf("proportion %+v inconsistent with successes %d", res.SuccessRate, res.Successes)
	}
	if res.Duration.Mean != 1 || res.Duration.Var() != 0 {
		t.Errorf("constant durations should give mean 1, var 0; got %v, %v", res.Duration.Mean, res.Duration.Var())
	}
	if res.Chunks != 7 { // ceil(400/64)
		t.Errorf("chunks = %d, want 7", res.Chunks)
	}
	if res.Stopped {
		t.Error("fixed-N run reported an adaptive stop")
	}
}

func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := mc.Run(ctx, mc.Config{
		MaxPaths:  100000,
		NewRunner: bernoulli(0.5),
	})
	if err == nil {
		t.Error("cancelled context should abort the run")
	}
}
