package mc_test

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/mc"
	"repro/internal/qmc"
	"repro/internal/sweep"
)

// thresholdRunner is a synthetic index-aware workload with a known
// analytic structure: success iff the path's single standard-normal
// increment exceeds Φ⁻¹(1−p). The antithetic member flips the increment's
// sign; the sobol member reads it from the replicate's Sobol sequence.
// Seed-derived draws keep every mode a pure function of (index, seed).
func thresholdRunner(p float64, baseSeed int64, mode qmc.Mode) func() (mc.Runner, error) {
	cut := math.Sqrt2 * math.Erfinv(2*(1-p)-1) // Φ⁻¹(1−p)
	return func() (mc.Runner, error) {
		var sobols [qmc.SobolReplicates]*qmc.Sobol
		if mode == qmc.ModeSobol {
			for r := range sobols {
				s, err := qmc.NewSobol(1, sweep.Seed(baseSeed, int(1e6)+r))
				if err != nil {
					return nil, err
				}
				sobols[r] = s
			}
		}
		return mc.IndexedRunnerFunc(func(index int, seed int64) (mc.Path, error) {
			var z float64
			switch mode {
			case qmc.ModeSobol:
				var zs [1]float64
				sobols[qmc.SobolReplicate(index)].Normals(qmc.SobolPoint(index), zs[:])
				z = zs[0]
			default:
				z = rand.New(rand.NewSource(seed)).NormFloat64()
				if qmc.PairNegated(index) {
					z = -z
				}
			}
			return mc.Path{Success: z > cut, Atomic: true, Stage: "done", Duration: 1}, nil
		}), nil
	}
}

func TestSamplerConfigValidation(t *testing.T) {
	base := mc.Config{Seed: 1, MaxPaths: 100, NewRunner: bernoulli(0.5)}

	bad := base
	bad.Sampler = "halton"
	if _, err := mc.Run(context.Background(), bad); err == nil {
		t.Error("unknown sampler accepted")
	}

	odd := base
	odd.Sampler = qmc.ModeAntithetic
	odd.ChunkSize = 31
	odd.NewRunner = thresholdRunner(0.5, 1, qmc.ModeAntithetic)
	if _, err := mc.Run(context.Background(), odd); err == nil {
		t.Error("antithetic mode accepted an odd chunk size")
	}

	// Variance-reduced modes require IndexedRunner.
	for _, m := range []qmc.Mode{qmc.ModeAntithetic, qmc.ModeSobol} {
		cfg := base
		cfg.Sampler = m
		if _, err := mc.Run(context.Background(), cfg); err == nil {
			t.Errorf("sampler %s accepted a non-indexed runner", m)
		}
	}

	// Pseudo mode accepts plain runners and canonicalises the zero value.
	res, err := mc.Run(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sampler != qmc.ModePseudo {
		t.Errorf("Sampler = %q, want pseudo", res.Sampler)
	}
}

// TestAntitheticPairSeeding pins the engine-side pairing: members of a
// pair receive the same seed (the even member's), and the odd member is
// the one flagged negated.
func TestAntitheticPairSeeding(t *testing.T) {
	var mu sync.Mutex
	seeds := make(map[int]int64)
	cfg := mc.Config{
		Seed:     9,
		MaxPaths: 64,
		Sampler:  qmc.ModeAntithetic,
		NewRunner: func() (mc.Runner, error) {
			return mc.IndexedRunnerFunc(func(index int, seed int64) (mc.Path, error) {
				mu.Lock()
				seeds[index] = seed
				mu.Unlock()
				return mc.Path{Success: true, Atomic: true, Stage: "s", Duration: 1}, nil
			}), nil
		},
	}
	if _, err := mc.Run(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if len(seeds) != 64 {
		t.Fatalf("recorded %d indices, want 64", len(seeds))
	}
	for i := 0; i < 64; i += 2 {
		if seeds[i] != seeds[i+1] {
			t.Errorf("pair (%d, %d): seeds %d != %d", i, i+1, seeds[i], seeds[i+1])
		}
		if want := sweep.Seed(9, i); seeds[i] != want {
			t.Errorf("path %d: seed %d, want sweep.Seed(9, %d) = %d", i, seeds[i], i, want)
		}
	}
}

// TestAntitheticPerfectPairStopsImmediately exercises the sampler-aware
// stopper where the statistics are exact: at p = 0.5 the threshold is 0,
// so every antithetic pair is (success, failure) with pair mean exactly
// ½ — zero variance. The estimator interval collapses and the run stops
// at the first boundary where the CLT interval is defined, while the
// pseudo run needs thousands of paths for the same width.
func TestAntitheticPerfectPairStopsImmediately(t *testing.T) {
	base := mc.Config{
		Seed:      5,
		MaxPaths:  200000,
		ChunkSize: 256,
		CIWidth:   0.01,
	}

	anti := base
	anti.Sampler = qmc.ModeAntithetic
	anti.NewRunner = thresholdRunner(0.5, 5, qmc.ModeAntithetic)
	ra, err := mc.Run(context.Background(), anti)
	if err != nil {
		t.Fatal(err)
	}
	if ra.Paths != 256 || !ra.Stopped {
		t.Errorf("antithetic run used %d paths (stopped=%v), want immediate stop at 256", ra.Paths, ra.Stopped)
	}
	if ra.SuccessRate.P != 0.5 {
		t.Errorf("antithetic SR = %v, want exactly 0.5", ra.SuccessRate.P)
	}
	if ra.EstHalfWidth != 0 || ra.HalfWidth() != 0 {
		t.Errorf("perfect pairing should report zero estimator width, got %v", ra.EstHalfWidth)
	}

	pseudo := base
	pseudo.NewRunner = thresholdRunner(0.5, 5, qmc.ModePseudo)
	rp, err := mc.Run(context.Background(), pseudo)
	if err != nil {
		t.Fatal(err)
	}
	if rp.Paths <= 10*ra.Paths {
		t.Errorf("pseudo run used %d paths; expected far more than antithetic's %d", rp.Paths, ra.Paths)
	}
}

// TestSobolStopsEarlierThanPseudo: on the smooth threshold workload the
// replicated-Sobol estimator reaches the target interval in far fewer
// paths than the Wilson-stopped pseudo run.
func TestSobolStopsEarlierThanPseudo(t *testing.T) {
	base := mc.Config{
		Seed:      13,
		MaxPaths:  200000,
		ChunkSize: 256,
		CIWidth:   0.01,
	}

	sob := base
	sob.Sampler = qmc.ModeSobol
	sob.NewRunner = thresholdRunner(0.7, 13, qmc.ModeSobol)
	rs, err := mc.Run(context.Background(), sob)
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Stopped {
		t.Fatalf("sobol run never stopped (%d paths, width %v)", rs.Paths, rs.EstHalfWidth)
	}
	if math.Abs(rs.SuccessRate.P-0.7) > 0.02 {
		t.Errorf("sobol SR = %v, want ≈ 0.7", rs.SuccessRate.P)
	}

	pseudo := base
	pseudo.NewRunner = thresholdRunner(0.7, 13, qmc.ModePseudo)
	rp, err := mc.Run(context.Background(), pseudo)
	if err != nil {
		t.Fatal(err)
	}
	if 2*rs.Paths > rp.Paths {
		t.Errorf("sobol used %d paths vs pseudo %d — want ≤ half", rs.Paths, rp.Paths)
	}
}

// TestSamplerModesDeterministicAcrossWorkers extends the engine's
// bit-reproducibility contract to the new modes: fixed-N and adaptive
// results are identical at any worker count.
func TestSamplerModesDeterministicAcrossWorkers(t *testing.T) {
	for _, m := range []qmc.Mode{qmc.ModeAntithetic, qmc.ModeSobol} {
		cfg := mc.Config{
			Seed:      31,
			MaxPaths:  5000,
			ChunkSize: 128,
			CIWidth:   0.02,
			Sampler:   m,
			NewRunner: thresholdRunner(0.6, 31, m),
		}
		var want mc.Result
		for i, workers := range []int{1, 2, 7} {
			cfg.Workers = workers
			res, err := mc.Run(context.Background(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				want = res
				continue
			}
			if !reflect.DeepEqual(res, want) {
				t.Errorf("%s: workers=%d diverged from workers=1", m, workers)
			}
		}
	}
}

// TestFixedNByteIdenticalWithProgressAcrossModes pins the satellite
// regression: hooking OnProgress must not change a fixed-N result in any
// sampler mode.
func TestFixedNByteIdenticalWithProgressAcrossModes(t *testing.T) {
	for _, m := range []qmc.Mode{qmc.ModePseudo, qmc.ModeAntithetic, qmc.ModeSobol} {
		cfg := mc.Config{
			Seed:      77,
			MaxPaths:  3000,
			ChunkSize: 250,
			Sampler:   m,
			NewRunner: thresholdRunner(0.65, 77, m),
		}
		plain, err := mc.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		snapshots := 0
		cfg.OnProgress = func(mc.Progress) { snapshots++ }
		hooked, err := mc.Run(context.Background(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		if snapshots != 12 {
			t.Errorf("%s: %d snapshots, want one per chunk (12)", m, snapshots)
		}
		if !reflect.DeepEqual(plain, hooked) {
			t.Errorf("%s: OnProgress perturbed the fixed-N result:\nplain  %+v\nhooked %+v", m, plain, hooked)
		}
	}
}

// TestAntitheticExactComplementarity pins the defining property end to
// end through the engine: with a symmetric threshold the two members of
// every pair land on opposite sides, so successes are exactly half.
func TestAntitheticExactComplementarity(t *testing.T) {
	cfg := mc.Config{
		Seed:      3,
		MaxPaths:  2048,
		Sampler:   qmc.ModeAntithetic,
		NewRunner: thresholdRunner(0.5, 3, qmc.ModeAntithetic),
	}
	res, err := mc.Run(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Successes*2 != res.Paths {
		t.Errorf("successes = %d of %d, want exactly half", res.Successes, res.Paths)
	}
}
