// Package solvecache is the cross-artifact half of the amortized solve
// engine: a process-wide, concurrency-safe cache of core solvers keyed by a
// canonical hash of (parameter set, quadrature options). Everything that
// solves the swap game from a utility.Params — the figure generators, the
// scenario batch runner, the game-tree cross-checks — routes through
// SharedModel, so identical solve cells are computed once per process
// rather than once per curve, per preset, or per artifact.
//
// Sharing is sound because a core.Model is immutable after construction and
// its solve memo only caches pure functions of (params, options, query);
// see DESIGN.md ("Amortized solve engine") for the key scheme and the
// invalidation rules (there are none to apply at runtime: a cache entry can
// never go stale, it can only be evicted to bound memory).
package solvecache

import (
	"fmt"
	"hash/maphash"
	"io"
	"math"
	"sync/atomic"

	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/memo"
	"repro/internal/utility"
)

// DefaultMaxModels is the default bound on the number of cached models.
// It comfortably covers the repository's fixed workloads — the 18 artifact
// groups plus the scenario presets touch well under a hundred distinct
// parameter sets — while atlas-scale generated universes (thousands of
// distinct parameter sets) raise it via SetMaxModels (swapd's
// -cache-max-models flag) instead of thrashing.
const DefaultMaxModels = 512

// QuadOpts are the solver options that participate in the cache key
// alongside the parameter set. The zero value selects core's defaults.
type QuadOpts struct {
	// GLOrder is the Gauss–Legendre order (0 = core default, 64).
	GLOrder int
	// GHOrder is the Gauss–Hermite order (0 = core default, 48).
	GHOrder int
	// ScanPoints is the utility-crossing scan resolution (0 = core
	// default, 600). The repeated-game quote solver runs a lighter scan;
	// keying on it keeps light and full solves in separate cells.
	ScanPoints int
}

// cacheEntry pairs a cached model with the exact key material it was
// built from, so a 64-bit hash collision is detected on hit (and served a
// private model) instead of silently returning a solver for different
// parameters. utility.Params is a flat comparable struct, so the check is
// two struct compares.
type cacheEntry struct {
	m    *core.Model
	p    utility.Params
	opts QuadOpts
}

var (
	seed    = maphash.MakeSeed()
	models  memo.Map[uint64, cacheEntry]
	limit   atomic.Int64 // 0 = DefaultMaxModels, <0 = unbounded
	bypass  atomic.Uint64
	evicted atomic.Uint64
)

// MaxModels returns the current bound on the number of cached models
// (0 = unbounded).
func MaxModels() int {
	n := limit.Load()
	switch {
	case n == 0:
		return DefaultMaxModels
	case n < 0:
		return 0
	default:
		return int(n)
	}
}

// SetMaxModels sets the bound on the number of cached models. n <= 0
// removes the bound. Lowering the bound takes effect on subsequent inserts;
// already-cached models above the new bound are evicted lazily.
func SetMaxModels(n int) {
	if n <= 0 {
		limit.Store(-1)
		return
	}
	limit.Store(int64(n))
}

// enforceBound evicts completed entries (never keep, the key just served)
// until the cache is within its bound. Eviction order is arbitrary — the
// cache is content-addressed and every entry is equally re-creatable, so
// recency bookkeeping on the lock-free hit path would cost more than the
// occasional rebuild it avoids. Concurrent inserts can briefly overshoot
// the bound; it is a memory bound, not an invariant.
func enforceBound(keep uint64) {
	max := MaxModels()
	if max == 0 {
		return
	}
	for models.Len() > max {
		victim, found := uint64(0), false
		models.Range(func(k uint64, _ cacheEntry) bool {
			if k == keep {
				return true
			}
			victim, found = k, true
			return false
		})
		if !found {
			return
		}
		models.Delete(victim)
		evicted.Add(1)
	}
}

// Key returns the canonical solve-cache key of a parameter set under the
// given quadrature options: a 64-bit hash over the exact float bit patterns
// of every model parameter, so two parameter sets collide only if they are
// numerically identical (up to the sign of zero and NaN payloads, which
// validated parameters exclude).
func Key(p utility.Params, q QuadOpts) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	f := func(v float64) {
		var b [8]byte
		bits := math.Float64bits(v)
		for i := range b {
			b[i] = byte(bits >> (8 * i))
		}
		h.Write(b[:])
	}
	f(p.Alice.Alpha)
	f(p.Alice.R)
	f(p.Bob.Alpha)
	f(p.Bob.R)
	f(p.Chains.TauA)
	f(p.Chains.TauB)
	f(p.Chains.EpsB)
	f(p.Price.Mu)
	f(p.Price.Sigma)
	f(p.P0)
	f(float64(q.GLOrder))
	f(float64(q.GHOrder))
	f(float64(q.ScanPoints))
	return h.Sum64()
}

// SharedModel returns the process-wide solver for the parameter set with
// core's default quadrature options, constructing and caching it on first
// use. The returned model is shared: callers must treat it (and the
// strategies/interval sets it returns) as read-only, which every core API
// already guarantees. The cache holds at most MaxModels models — inserting
// beyond the bound evicts an arbitrary cached model (see enforceBound), so
// unbounded parameter streams cannot grow memory and hot workloads larger
// than the old hard cap no longer degrade to uncached private models.
func SharedModel(p utility.Params) (*core.Model, error) {
	return SharedModelQuad(p, QuadOpts{})
}

// SharedModelQuad is SharedModel with explicit quadrature options.
func SharedModelQuad(p utility.Params, q QuadOpts) (*core.Model, error) {
	// Validate before touching the cache so invalid parameters return the
	// usual error instead of caching a nil model.
	if err := p.Validate(); err != nil {
		return core.New(p)
	}
	key := Key(p, q)
	ent := models.Do(key, func() cacheEntry {
		// Construction cannot fail here: the parameters were validated
		// above and the quadrature orders are gated to positive values.
		mm, err := newModel(p, q)
		if err != nil {
			return cacheEntry{}
		}
		return cacheEntry{m: mm, p: p, opts: q}
	})
	if ent.m == nil || ent.p != p || ent.opts != q {
		// Defensive: a cached construction failure, or a 64-bit hash
		// collision between distinct parameter sets — serve a private
		// model rather than a wrong one.
		bypass.Add(1)
		return newModel(p, q)
	}
	enforceBound(key)
	return ent.m, nil
}

func newModel(p utility.Params, q QuadOpts) (*core.Model, error) {
	var opts []core.Option
	if q.GLOrder > 0 {
		opts = append(opts, core.WithQuadOrder(q.GLOrder))
	}
	if q.GHOrder > 0 {
		opts = append(opts, core.WithHermiteOrder(q.GHOrder))
	}
	if q.ScanPoints > 0 {
		opts = append(opts, core.WithScanPoints(q.ScanPoints))
	}
	return core.New(p, opts...)
}

// Stats reports the cache's cumulative behaviour: model-level hits and
// misses, the eviction and private-model fallback counters, and the
// aggregate solve-memo hits/misses across every cached model.
type Stats struct {
	// ModelHits and ModelMisses count SharedModel lookups.
	ModelHits, ModelMisses uint64
	// Bypassed counts requests served with a private model defensively: a
	// 64-bit key collision between distinct parameter sets, or a cached
	// construction failure.
	Bypassed uint64
	// Evicted counts models dropped to keep the cache within its bound.
	Evicted uint64
	// Models is the number of cached models; Limit is the configured bound
	// (0 = unbounded).
	Models, Limit int
	// SolveHits and SolveMisses aggregate the per-model solve-memo
	// counters of every cached model.
	SolveHits, SolveMisses uint64
}

// WriteStats renders the process's solve- and quadrature-cache counters —
// the diagnostic block behind the CLIs' -cache-stats flag.
func WriteStats(w io.Writer) {
	s := ReadStats()
	fmt.Fprintf(w, "solve cache: %d/%d models (hits %d, misses %d, bypassed %d, evicted %d); solve cells: hits %d, misses %d\n",
		s.Models, s.Limit, s.ModelHits, s.ModelMisses, s.Bypassed, s.Evicted, s.SolveHits, s.SolveMisses)
	glH, glM, ghH, ghM := mathx.QuadCacheStats()
	fmt.Fprintf(w, "quadrature tables: Gauss-Legendre hits %d, misses %d; Gauss-Hermite hits %d, misses %d\n",
		glH, glM, ghH, ghM)
}

// ReadStats snapshots the cache counters.
func ReadStats() Stats {
	s := Stats{
		Bypassed: bypass.Load(),
		Evicted:  evicted.Load(),
		Models:   models.Len(),
		Limit:    MaxModels(),
	}
	s.ModelHits, s.ModelMisses = models.Stats()
	models.Range(func(_ uint64, ent cacheEntry) bool {
		if ent.m != nil {
			h, mi := ent.m.MemoStats()
			s.SolveHits += h
			s.SolveMisses += mi
		}
		return true
	})
	return s
}
