package solvecache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
)

// ErrFlightPanicked is the error waiters of a coalesced computation receive
// when the leader's fn panicked; the panic itself propagates on the leader.
var ErrFlightPanicked = errors.New("solvecache: in-flight computation panicked")

// Flight is the single-flight layer the quote service puts in front of the
// solve caches: concurrent calls with the same key coalesce onto one
// in-flight computation, so a burst of identical requests costs one solve
// and N−1 waits. Unlike memo.Map it remembers nothing — the entry is
// removed the moment the computation finishes — because the durable tiers
// below it (the shared-model cache here, the per-Model solve memos in
// internal/core) already amortise repeated work across time; Flight only
// collapses repetition in flight, which is exactly the dedup a request
// burst needs without any growth in resident memory.
//
// The zero value is ready to use. K must be a comparable request key that
// fully determines the computation (the RPC layer uses a canonical JSON
// encoding of the request).
type Flight[K comparable, V any] struct {
	mu      sync.Mutex
	calls   map[K]*flightCall[V]
	leaders atomic.Uint64
	waiters atomic.Uint64
}

// flightCall is one in-flight computation: done is closed after val/err are
// set (channel close is the happens-before edge that publishes them).
type flightCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the result of fn for key, coalescing concurrent calls: the
// first caller (the leader) runs fn to completion — deliberately ignoring
// ctx, since its result serves every waiter — while later callers with the
// same key block until the leader finishes or their own ctx is done.
// shared reports whether this call consumed another caller's computation
// rather than running fn itself. A waiter whose ctx expires returns
// ctx.Err(); the leader's computation keeps running for the others. Once
// the leader finishes the key is forgotten, so a later call computes anew.
func (f *Flight[K, V]) Do(ctx context.Context, key K, fn func() (V, error)) (val V, shared bool, err error) {
	f.mu.Lock()
	if f.calls == nil {
		f.calls = make(map[K]*flightCall[V])
	}
	if c, ok := f.calls[key]; ok {
		f.mu.Unlock()
		f.waiters.Add(1)
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			var zero V
			return zero, true, ctx.Err()
		}
	}
	c := &flightCall[V]{done: make(chan struct{})}
	f.calls[key] = c
	f.mu.Unlock()
	f.leaders.Add(1)

	// Settle before returning — and before propagating a panic — so waiters
	// can never block forever on an abandoned entry. The key is deleted
	// before done is closed: a request arriving after completion must start
	// a fresh flight, not adopt a finished one.
	settle := func() {
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
	}
	defer func() {
		if r := recover(); r != nil {
			c.err = ErrFlightPanicked
			settle()
			panic(r)
		}
	}()
	c.val, c.err = fn()
	settle()
	return c.val, false, c.err
}

// FlightStats reports the cumulative coalescing behaviour of a Flight.
type FlightStats struct {
	// Leaders counts calls that ran the underlying computation.
	Leaders uint64
	// Waiters counts calls that coalesced onto another caller's
	// computation (including waiters that gave up on their own ctx).
	Waiters uint64
}

// HitRate is the fraction of calls served without running the computation.
func (s FlightStats) HitRate() float64 {
	total := s.Leaders + s.Waiters
	if total == 0 {
		return 0
	}
	return float64(s.Waiters) / float64(total)
}

// Stats snapshots the leader/waiter counters.
func (f *Flight[K, V]) Stats() FlightStats {
	return FlightStats{Leaders: f.leaders.Load(), Waiters: f.waiters.Load()}
}

// InFlight reports the number of keys currently being computed.
func (f *Flight[K, V]) InFlight() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.calls)
}
