package solvecache

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightCoalesces is the single-flight contract: N concurrent calls
// with one key run the computation exactly once, every caller sees the
// leader's value, and exactly one caller reports shared == false.
func TestFlightCoalesces(t *testing.T) {
	const n = 64
	var (
		f        Flight[string, int]
		computes atomic.Int64
		leaders  atomic.Int64
		gate     = make(chan struct{})
		done     sync.WaitGroup
	)
	call := func() {
		defer done.Done()
		v, shared, err := f.Do(context.Background(), "cell", func() (int, error) {
			computes.Add(1)
			<-gate // hold the flight open until every waiter has joined
			return 42, nil
		})
		if err != nil {
			t.Errorf("Do: %v", err)
		}
		if v != 42 {
			t.Errorf("Do = %d, want 42", v)
		}
		if !shared {
			leaders.Add(1)
		}
	}
	// Establish the leader first, then pile the waiters on and release the
	// gate only once the waiter counter proves all of them joined the
	// flight — deterministic under any scheduling.
	done.Add(1)
	go call()
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	for i := 0; i < n-1; i++ {
		done.Add(1)
		go call()
	}
	for f.Stats().Waiters < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	done.Wait()

	if got := computes.Load(); got != 1 {
		t.Errorf("computed %d times, want 1", got)
	}
	if got := leaders.Load(); got != 1 {
		t.Errorf("%d callers report shared=false, want 1", got)
	}
	st := f.Stats()
	if st.Leaders != 1 || st.Waiters != n-1 {
		t.Errorf("stats = %+v, want 1 leader, %d waiters", st, n-1)
	}
	if hr := st.HitRate(); hr <= 0 || hr >= 1 {
		t.Errorf("hit rate = %g, want in (0, 1)", hr)
	}
	if f.InFlight() != 0 {
		t.Errorf("InFlight = %d after completion, want 0", f.InFlight())
	}
}

// TestFlightDistinctKeysDoNotCoalesce checks distinct keys compute
// independently and do not block each other.
func TestFlightDistinctKeysDoNotCoalesce(t *testing.T) {
	var f Flight[int, int]
	var wg sync.WaitGroup
	const n = 16
	var computes atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := f.Do(context.Background(), i, func() (int, error) {
				computes.Add(1)
				return i * i, nil
			})
			if err != nil || shared || v != i*i {
				t.Errorf("Do(%d) = (%d, %v, %v), want (%d, false, nil)", i, v, shared, err, i*i)
			}
		}(i)
	}
	wg.Wait()
	if computes.Load() != n {
		t.Errorf("computed %d times, want %d", computes.Load(), n)
	}
}

// TestFlightRecomputesAfterCompletion checks the flight forgets finished
// keys: sequential calls each run the computation.
func TestFlightRecomputesAfterCompletion(t *testing.T) {
	var f Flight[string, int]
	var computes int
	for i := 1; i <= 3; i++ {
		v, shared, err := f.Do(context.Background(), "k", func() (int, error) {
			computes++
			return computes, nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: (%v, shared=%v)", i, err, shared)
		}
		if v != i {
			t.Fatalf("call %d = %d, want %d (no caching across completed flights)", i, v, i)
		}
	}
}

// TestFlightErrorShared checks the leader's error reaches every waiter.
func TestFlightErrorShared(t *testing.T) {
	var f Flight[string, int]
	sentinel := errors.New("boom")
	gate := make(chan struct{})
	var wg sync.WaitGroup
	var sharedErrs atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, _, err := f.Do(context.Background(), "k", func() (int, error) {
			<-gate
			return 0, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Errorf("leader err = %v, want %v", err, sentinel)
		}
	}()
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, shared, err := f.Do(context.Background(), "k", func() (int, error) {
			t.Error("waiter ran the computation")
			return 0, nil
		})
		if shared && errors.Is(err, sentinel) {
			sharedErrs.Add(1)
		}
	}()
	for f.Stats().Waiters == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if sharedErrs.Load() != 1 {
		t.Errorf("waiter did not observe the shared error")
	}
}

// TestFlightWaiterContextCancel checks a waiter abandons the flight when
// its ctx is done while the leader keeps computing for itself.
func TestFlightWaiterContextCancel(t *testing.T) {
	var f Flight[string, int]
	gate := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		v, _, err := f.Do(context.Background(), "k", func() (int, error) {
			<-gate
			return 7, nil
		})
		if err != nil || v != 7 {
			t.Errorf("leader = (%d, %v), want (7, nil)", v, err)
		}
	}()
	for f.InFlight() == 0 {
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := f.Do(ctx, "k", func() (int, error) { return 0, nil })
	if !shared || !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter = (shared=%v, %v), want (true, context.Canceled)", shared, err)
	}
	close(gate)
	wg.Wait()
}

// TestFlightPanicPropagates checks a panicking leader settles the entry
// (waiters get ErrFlightPanicked, later calls recompute) and re-panics.
func TestFlightPanicPropagates(t *testing.T) {
	var f Flight[string, int]
	func() {
		defer func() {
			if recover() == nil {
				t.Error("leader panic did not propagate")
			}
		}()
		f.Do(context.Background(), "k", func() (int, error) { panic("kaboom") })
	}()
	if f.InFlight() != 0 {
		t.Fatalf("InFlight = %d after panic, want 0", f.InFlight())
	}
	v, shared, err := f.Do(context.Background(), "k", func() (int, error) { return 5, nil })
	if v != 5 || shared || err != nil {
		t.Errorf("post-panic Do = (%d, %v, %v), want (5, false, nil)", v, shared, err)
	}
}
