package solvecache

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/utility"
)

func TestSharedModelReturnsOneModelPerParams(t *testing.T) {
	p := utility.Default()
	m1, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("same params produced distinct shared models")
	}
	q := p
	q.Alice.Alpha = 0.31
	m3, err := SharedModel(q)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("distinct params shared one model")
	}
}

func TestSharedModelMatchesFreshSolve(t *testing.T) {
	p := utility.Default()
	shared, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := SharedModel(utility.Params{}) // invalid: exercises the error path
	if err == nil || fresh != nil {
		t.Fatalf("invalid params: model %v, err %v", fresh, err)
	}
	sr, err := shared.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	// The shared model must agree with an uncached one bit for bit.
	priv, err := SharedModelQuad(p, QuadOpts{GLOrder: 64, GHOrder: 48})
	if err != nil {
		t.Fatal(err)
	}
	srPriv, err := priv.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sr) != math.Float64bits(srPriv) {
		t.Fatalf("shared SR %v != private SR %v", sr, srPriv)
	}
}

func TestKeyDistinguishesEveryParameter(t *testing.T) {
	base := utility.Default()
	k0 := Key(base, QuadOpts{})
	mutations := []func(*utility.Params){
		func(p *utility.Params) { p.Alice.Alpha += 1e-12 },
		func(p *utility.Params) { p.Alice.R += 1e-12 },
		func(p *utility.Params) { p.Bob.Alpha += 1e-12 },
		func(p *utility.Params) { p.Bob.R += 1e-12 },
		func(p *utility.Params) { p.Chains.TauA += 1e-9 },
		func(p *utility.Params) { p.Chains.TauB += 1e-9 },
		func(p *utility.Params) { p.Chains.EpsB += 1e-9 },
		func(p *utility.Params) { p.Price.Mu += 1e-12 },
		func(p *utility.Params) { p.Price.Sigma += 1e-12 },
		func(p *utility.Params) { p.P0 += 1e-9 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if Key(p, QuadOpts{}) == k0 {
			t.Errorf("mutation %d did not change the key", i)
		}
	}
	if Key(base, QuadOpts{GLOrder: 32}) == k0 {
		t.Error("quad options did not change the key")
	}
	if Key(base, QuadOpts{ScanPoints: 200}) == k0 {
		t.Error("scan resolution did not change the key")
	}
	if Key(base, QuadOpts{}) != k0 {
		t.Error("key is not deterministic")
	}
}

// TestScanPointsOptionsMatchDirectConstruction pins the light-solver path
// the repeated game's quote cache runs on: explicit scan/quadrature
// options must reproduce a directly constructed core.Model bit for bit,
// and must occupy a cache cell distinct from the default solver's.
func TestScanPointsOptionsMatchDirectConstruction(t *testing.T) {
	p := utility.Default()
	light, err := SharedModelQuad(p, QuadOpts{GLOrder: 32, ScanPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.New(p, core.WithQuadOrder(32), core.WithScanPoints(200))
	if err != nil {
		t.Fatal(err)
	}
	srLight, err := light.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	srDirect, err := direct.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(srLight) != math.Float64bits(srDirect) {
		t.Fatalf("light shared SR %v != direct SR %v", srLight, srDirect)
	}
	full, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if full == light {
		t.Fatal("default and light options share one cache cell")
	}
}

// TestConcurrentSharedModel exercises the cache under parallel access (run
// with -race in CI): one model per parameter set, no torn results.
func TestConcurrentSharedModel(t *testing.T) {
	p := utility.Default()
	var wg sync.WaitGroup
	got := make([]float64, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := SharedModel(p)
			if err != nil {
				t.Error(err)
				return
			}
			sr, err := m.SuccessRate(2.0)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = sr
		}(i)
	}
	wg.Wait()
	for i, sr := range got {
		if math.Float64bits(sr) != math.Float64bits(got[0]) {
			t.Fatalf("goroutine %d saw SR %v, first saw %v", i, sr, got[0])
		}
	}
}

func TestMaxModelsSettable(t *testing.T) {
	defer SetMaxModels(DefaultMaxModels)
	if MaxModels() != DefaultMaxModels {
		t.Fatalf("default bound = %d, want %d", MaxModels(), DefaultMaxModels)
	}
	SetMaxModels(7)
	if MaxModels() != 7 {
		t.Fatalf("bound = %d after SetMaxModels(7)", MaxModels())
	}
	SetMaxModels(0)
	if MaxModels() != 0 {
		t.Fatalf("bound = %d after SetMaxModels(0), want 0 (unbounded)", MaxModels())
	}
}

// TestBoundEvictsInsteadOfBypassing pins the over-capacity behaviour: the
// cache evicts to stay within its bound (and keeps serving shared models)
// rather than permanently degrading to private uncached models, and an
// evicted cell recomputes bit-identically on re-request.
func TestBoundEvictsInsteadOfBypassing(t *testing.T) {
	defer SetMaxModels(DefaultMaxModels)
	SetMaxModels(4)
	before := ReadStats()
	base := utility.Default()
	alpha := func(i int) float64 { return 0.20 + 0.005*float64(i) }
	var last *core.Model
	for i := 0; i < 12; i++ {
		p := base
		p.Alice.Alpha = alpha(i)
		m, err := SharedModelQuad(p, QuadOpts{})
		if err != nil {
			t.Fatal(err)
		}
		last = m
	}
	st := ReadStats()
	if st.Models > 4 {
		t.Errorf("cache holds %d models, bound is 4", st.Models)
	}
	if st.Evicted <= before.Evicted {
		t.Error("no evictions recorded while inserting past the bound")
	}
	if st.Limit != 4 {
		t.Errorf("Stats.Limit = %d, want 4", st.Limit)
	}
	// The just-inserted entry is never the eviction victim.
	p := base
	p.Alice.Alpha = alpha(11)
	if m, err := SharedModelQuad(p, QuadOpts{}); err != nil || m != last {
		t.Errorf("most recent insert was evicted (m == last: %v, err %v)", m == last, err)
	}
	// An evicted cell is re-solved, not bypassed, and matches a direct solve.
	q := base
	q.Alice.Alpha = alpha(0)
	m, err := SharedModelQuad(q, QuadOpts{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.New(q)
	if err != nil {
		t.Fatal(err)
	}
	sr, err := m.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	srDirect, err := direct.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sr) != math.Float64bits(srDirect) {
		t.Fatalf("re-solved evicted cell SR %v != direct SR %v", sr, srDirect)
	}
	if got := ReadStats(); got.Bypassed != st.Bypassed {
		t.Errorf("eviction path incremented Bypassed (%d -> %d)", st.Bypassed, got.Bypassed)
	}
}

func TestReadStatsCounts(t *testing.T) {
	p := utility.Default()
	before := ReadStats()
	if _, err := SharedModel(p); err != nil {
		t.Fatal(err)
	}
	if _, err := SharedModel(p); err != nil {
		t.Fatal(err)
	}
	after := ReadStats()
	if after.ModelHits+after.ModelMisses <= before.ModelHits+before.ModelMisses {
		t.Fatal("stats did not advance")
	}
	if after.Models == 0 {
		t.Fatal("no models recorded")
	}
}
