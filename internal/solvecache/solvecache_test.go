package solvecache

import (
	"math"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/utility"
)

func TestSharedModelReturnsOneModelPerParams(t *testing.T) {
	p := utility.Default()
	m1, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m2 {
		t.Fatal("same params produced distinct shared models")
	}
	q := p
	q.Alice.Alpha = 0.31
	m3, err := SharedModel(q)
	if err != nil {
		t.Fatal(err)
	}
	if m3 == m1 {
		t.Fatal("distinct params shared one model")
	}
}

func TestSharedModelMatchesFreshSolve(t *testing.T) {
	p := utility.Default()
	shared, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := SharedModel(utility.Params{}) // invalid: exercises the error path
	if err == nil || fresh != nil {
		t.Fatalf("invalid params: model %v, err %v", fresh, err)
	}
	sr, err := shared.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	// The shared model must agree with an uncached one bit for bit.
	priv, err := SharedModelQuad(p, QuadOpts{GLOrder: 64, GHOrder: 48})
	if err != nil {
		t.Fatal(err)
	}
	srPriv, err := priv.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(sr) != math.Float64bits(srPriv) {
		t.Fatalf("shared SR %v != private SR %v", sr, srPriv)
	}
}

func TestKeyDistinguishesEveryParameter(t *testing.T) {
	base := utility.Default()
	k0 := Key(base, QuadOpts{})
	mutations := []func(*utility.Params){
		func(p *utility.Params) { p.Alice.Alpha += 1e-12 },
		func(p *utility.Params) { p.Alice.R += 1e-12 },
		func(p *utility.Params) { p.Bob.Alpha += 1e-12 },
		func(p *utility.Params) { p.Bob.R += 1e-12 },
		func(p *utility.Params) { p.Chains.TauA += 1e-9 },
		func(p *utility.Params) { p.Chains.TauB += 1e-9 },
		func(p *utility.Params) { p.Chains.EpsB += 1e-9 },
		func(p *utility.Params) { p.Price.Mu += 1e-12 },
		func(p *utility.Params) { p.Price.Sigma += 1e-12 },
		func(p *utility.Params) { p.P0 += 1e-9 },
	}
	for i, mut := range mutations {
		p := base
		mut(&p)
		if Key(p, QuadOpts{}) == k0 {
			t.Errorf("mutation %d did not change the key", i)
		}
	}
	if Key(base, QuadOpts{GLOrder: 32}) == k0 {
		t.Error("quad options did not change the key")
	}
	if Key(base, QuadOpts{ScanPoints: 200}) == k0 {
		t.Error("scan resolution did not change the key")
	}
	if Key(base, QuadOpts{}) != k0 {
		t.Error("key is not deterministic")
	}
}

// TestScanPointsOptionsMatchDirectConstruction pins the light-solver path
// the repeated game's quote cache runs on: explicit scan/quadrature
// options must reproduce a directly constructed core.Model bit for bit,
// and must occupy a cache cell distinct from the default solver's.
func TestScanPointsOptionsMatchDirectConstruction(t *testing.T) {
	p := utility.Default()
	light, err := SharedModelQuad(p, QuadOpts{GLOrder: 32, ScanPoints: 200})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := core.New(p, core.WithQuadOrder(32), core.WithScanPoints(200))
	if err != nil {
		t.Fatal(err)
	}
	srLight, err := light.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	srDirect, err := direct.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(srLight) != math.Float64bits(srDirect) {
		t.Fatalf("light shared SR %v != direct SR %v", srLight, srDirect)
	}
	full, err := SharedModel(p)
	if err != nil {
		t.Fatal(err)
	}
	if full == light {
		t.Fatal("default and light options share one cache cell")
	}
}

// TestConcurrentSharedModel exercises the cache under parallel access (run
// with -race in CI): one model per parameter set, no torn results.
func TestConcurrentSharedModel(t *testing.T) {
	p := utility.Default()
	var wg sync.WaitGroup
	got := make([]float64, 16)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := SharedModel(p)
			if err != nil {
				t.Error(err)
				return
			}
			sr, err := m.SuccessRate(2.0)
			if err != nil {
				t.Error(err)
				return
			}
			got[i] = sr
		}(i)
	}
	wg.Wait()
	for i, sr := range got {
		if math.Float64bits(sr) != math.Float64bits(got[0]) {
			t.Fatalf("goroutine %d saw SR %v, first saw %v", i, sr, got[0])
		}
	}
}

func TestReadStatsCounts(t *testing.T) {
	p := utility.Default()
	before := ReadStats()
	if _, err := SharedModel(p); err != nil {
		t.Fatal(err)
	}
	if _, err := SharedModel(p); err != nil {
		t.Fatal(err)
	}
	after := ReadStats()
	if after.ModelHits+after.ModelMisses <= before.ModelHits+before.ModelMisses {
		t.Fatal("stats did not advance")
	}
	if after.Models == 0 {
		t.Fatal("no models recorded")
	}
}
