package gbm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// TestStepZMatchesStep pins the batched core to the per-event sampler:
// StepZ with a pre-drawn normal is bit-identical to Step consuming the
// same draw.
func TestStepZMatchesStep(t *testing.T) {
	g := Process{Mu: 0.01, Sigma: 0.1}
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	p := 2.0
	for i := 0; i < 100; i++ {
		want := g.Step(a, p, 0.5)
		if got := g.StepZ(p, 0.5, b.NormFloat64()); got != want {
			t.Fatalf("step %d: StepZ %v != Step %v", i, got, want)
		}
		p = want
	}
}

// TestFillNormalsOrder pins the slab fill to the per-event draw order.
func TestFillNormalsOrder(t *testing.T) {
	a := rand.New(rand.NewSource(11))
	b := rand.New(rand.NewSource(11))
	z := make([]float64, 64)
	FillNormals(a, z)
	for i, zi := range z {
		if want := b.NormFloat64(); zi != want {
			t.Fatalf("slab[%d] = %v, want %v", i, zi, want)
		}
	}
}

// TestStepBatchMatchesScalar pins the vector step to the scalar one,
// including with out aliasing p.
func TestStepBatchMatchesScalar(t *testing.T) {
	g := Process{Mu: -0.02, Sigma: 0.3}
	rng := rand.New(rand.NewSource(3))
	const n = 257
	p := make([]float64, n)
	z := make([]float64, n)
	for i := range p {
		p[i] = 0.5 + rng.Float64()*4
		z[i] = rng.NormFloat64()
	}
	want := make([]float64, n)
	for i := range p {
		want[i] = g.StepZ(p[i], 1.5, z[i])
	}
	out := make([]float64, n)
	if err := g.StepBatch(out, p, z, 1.5); err != nil {
		t.Fatal(err)
	}
	for i := range out {
		if out[i] != want[i] {
			t.Fatalf("out[%d] = %v, want %v", i, out[i], want[i])
		}
	}
	// Aliased: out == p.
	if err := g.StepBatch(p, p, z, 1.5); err != nil {
		t.Fatal(err)
	}
	for i := range p {
		if p[i] != want[i] {
			t.Fatalf("aliased out[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestStepBatchValidation(t *testing.T) {
	g := Process{Mu: 0, Sigma: 0.2}
	out, p, z := make([]float64, 2), []float64{1, 2}, make([]float64, 2)
	if err := g.StepBatch(out, p, z[:1], 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("mismatched lengths: err = %v, want ErrBadParam", err)
	}
	for _, tau := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if err := g.StepBatch(out, p, z, tau); !errors.Is(err, ErrBadParam) {
			t.Errorf("tau=%v: err = %v, want ErrBadParam", tau, err)
		}
	}
	for _, bad := range []float64{0, -3, math.NaN(), math.Inf(1)} {
		if err := g.StepBatch(out, []float64{1, bad}, z, 1); !errors.Is(err, ErrBadParam) {
			t.Errorf("p=%v: err = %v, want ErrBadParam", bad, err)
		}
	}
}

// TestSampleAtBatchMatchesSampleAt pins the caller-owned batched path to
// the allocating one, byte for byte, with no allocation beyond out.
func TestSampleAtBatchMatchesSampleAt(t *testing.T) {
	g := Process{Mu: 0.05, Sigma: 0.25}
	times := []float64{0, 0.5, 1.25, 2, 7}
	a := rand.New(rand.NewSource(21))
	b := rand.New(rand.NewSource(21))
	want, err := g.SampleAt(a, 2, times)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float64, 0, len(times))
	got, err := g.SampleAtBatch(b, 2, times, out)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("len(got) = %d, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("path[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := g.SampleAtBatch(b, 2, times, out); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("SampleAtBatch allocates %v per run, want 0", allocs)
	}
}

func TestSampleAtBatchValidation(t *testing.T) {
	g := Process{Mu: 0, Sigma: 0.2}
	rng := rand.New(rand.NewSource(1))
	out := make([]float64, 0, 8)
	if _, err := g.SampleAtBatch(rng, -1, []float64{0, 1}, out); !errors.Is(err, ErrBadParam) {
		t.Errorf("p0<0: err = %v, want ErrBadParam", err)
	}
	if _, err := g.SampleAtBatch(rng, 2, []float64{0, 1, 1}, out); !errors.Is(err, ErrBadParam) {
		t.Errorf("flat times: err = %v, want ErrBadParam", err)
	}
	if _, err := g.SampleAtBatch(rng, 2, make([]float64, 16), out); !errors.Is(err, ErrBadParam) {
		t.Errorf("undersized out: err = %v, want ErrBadParam", err)
	}
	if got, err := g.SampleAtBatch(rng, 2, nil, out); err != nil || got != nil {
		t.Errorf("empty times: got %v, %v, want nil, nil", got, err)
	}
	// Invalid grids must not consume draws: the next draw matches a fresh
	// stream.
	fresh := rand.New(rand.NewSource(1))
	// Consume from fresh what the successful calls above drew from rng: none
	// — only the nil-times call succeeded, drawing nothing.
	if got, want := rng.NormFloat64(), fresh.NormFloat64(); got != want {
		t.Errorf("failed calls consumed draws: next = %v, want %v", got, want)
	}
}

// TestHotPathValidation pins the package-wide convention: the cheap
// hot-path methods panic on invalid (p, tau) exactly like PDF/CDF, instead
// of silently emitting NaN-tainted prices or garbage expectations.
func TestHotPathValidation(t *testing.T) {
	g := Process{Mu: 0.01, Sigma: 0.2}
	rng := rand.New(rand.NewSource(5))
	bad := []struct {
		name   string
		p, tau float64
	}{
		{"tau=0", 2, 0},
		{"tau<0", 2, -1},
		{"tau=NaN", 2, math.NaN()},
		{"tau=+Inf", 2, math.Inf(1)},
		{"p=0", 0, 1},
		{"p<0", -2, 1},
		{"p=NaN", math.NaN(), 1},
		{"p=+Inf", math.Inf(1), 1},
	}
	for _, c := range bad {
		for name, call := range map[string]func(){
			"Step":  func() { g.Step(rng, c.p, c.tau) },
			"StepZ": func() { g.StepZ(c.p, c.tau, 0.1) },
			"E":     func() { g.E(c.p, c.tau) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s with %s did not panic", name, c.name)
					}
				}()
				call()
			}()
		}
	}
	// Valid inputs must not panic and must stay finite.
	if x := g.Step(rng, 2, 0.5); math.IsNaN(x) || x <= 0 {
		t.Errorf("Step(2, 0.5) = %v, want positive finite", x)
	}
	if x := g.E(2, 0.5); math.IsNaN(x) || x <= 0 {
		t.Errorf("E(2, 0.5) = %v, want positive finite", x)
	}
}
