package gbm

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// defaultProc matches Table III: µ = 0.002/hour, σ = 0.1/sqrt(hour).
func defaultProc() Process { return Process{Mu: 0.002, Sigma: 0.1} }

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name      string
		mu, sigma float64
		wantErr   bool
	}{
		{"tableIII", 0.002, 0.1, false},
		{"negativeDrift", -0.002, 0.1, false},
		{"zeroDrift", 0, 0.1, false},
		{"zeroSigma", 0.002, 0, true},
		{"negativeSigma", 0.002, -0.1, true},
		{"nanMu", math.NaN(), 0.1, true},
		{"infSigma", 0, math.Inf(1), true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := New(tt.mu, tt.sigma)
			if (err != nil) != tt.wantErr {
				t.Errorf("New(%v,%v) err = %v, wantErr %v", tt.mu, tt.sigma, err, tt.wantErr)
			}
		})
	}
}

func TestTransitionValidation(t *testing.T) {
	g := defaultProc()
	if _, err := g.Transition(0, 1); !errors.Is(err, ErrBadParam) {
		t.Errorf("p=0 should fail, got %v", err)
	}
	if _, err := g.Transition(2, 0); !errors.Is(err, ErrBadParam) {
		t.Errorf("tau=0 should fail, got %v", err)
	}
	l, err := g.Transition(2, 4)
	if err != nil {
		t.Fatalf("Transition: %v", err)
	}
	wantMu := math.Log(2) + (0.002-0.005)*4
	if !almostEqual(l.Mu, wantMu, 1e-15) {
		t.Errorf("Mu = %v, want %v", l.Mu, wantMu)
	}
	if !almostEqual(l.Sigma, 0.2, 1e-15) {
		t.Errorf("Sigma = %v, want 0.2", l.Sigma)
	}
}

func TestExpectationMatchesPaper(t *testing.T) {
	// E(P_t, τ) = P_t e^{µτ} per §III.A.
	g := defaultProc()
	tests := []struct {
		p, tau float64
	}{
		{2, 4}, {2, 3}, {1.5, 1}, {0.1, 10},
	}
	for _, tt := range tests {
		want := tt.p * math.Exp(g.Mu*tt.tau)
		if got := g.E(tt.p, tt.tau); !almostEqual(got, want, 1e-14) {
			t.Errorf("E(%v,%v) = %v, want %v", tt.p, tt.tau, got, want)
		}
	}
}

func TestPDFIntegratesToOne(t *testing.T) {
	g := defaultProc()
	gl := mathx.MustGaussLegendre(64)
	got := gl.IntegratePanels(func(x float64) float64 { return g.PDF(x, 2, 4) }, 1e-9, 10, 32)
	if !almostEqual(got, 1, 1e-9) {
		t.Errorf("∫PDF = %.12f, want 1", got)
	}
}

func TestPDFIsDensityOfCDF(t *testing.T) {
	g := defaultProc()
	const p, tau = 2.0, 4.0
	for _, x := range []float64{1.0, 1.8, 2.0, 2.5, 3.5} {
		h := 1e-6
		numDeriv := (g.CDF(x+h, p, tau) - g.CDF(x-h, p, tau)) / (2 * h)
		if got := g.PDF(x, p, tau); !almostEqual(got, numDeriv, 1e-5) {
			t.Errorf("PDF(%v) = %.10f, dCDF/dx ≈ %.10f", x, got, numDeriv)
		}
	}
}

func TestMeanConsistentWithPDF(t *testing.T) {
	// ∫ x·PDF = E: the density and the closed-form expectation must agree.
	g := Process{Mu: 0.004, Sigma: 0.15}
	gl := mathx.MustGaussLegendre(80)
	const p, tau = 2.0, 5.0
	got := gl.IntegratePanels(func(x float64) float64 { return x * g.PDF(x, p, tau) }, 1e-9, 20, 40)
	if want := g.E(p, tau); !almostEqual(got, want, 1e-8) {
		t.Errorf("∫x·PDF = %.12f, want E = %.12f", got, want)
	}
}

func TestTailProbComplementsCDF(t *testing.T) {
	g := defaultProc()
	err := quick.Check(func(a float64) bool {
		x := 0.01 + math.Mod(math.Abs(a), 10)
		return math.Abs(g.CDF(x, 2, 4)+g.TailProb(x, 2, 4)-1) < 1e-12
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}

func TestPartialExpectationsSplitMean(t *testing.T) {
	g := defaultProc()
	const p, tau = 2.0, 4.0
	for _, k := range []float64{0.5, 1.48, 2, 3.7} {
		sum := g.PartialExpectationAbove(k, p, tau) + g.PartialExpectationBelow(k, p, tau)
		if want := g.E(p, tau); !almostEqual(sum, want, 1e-12) {
			t.Errorf("partials at k=%v sum to %v, want %v", k, sum, want)
		}
	}
}

func TestQuantileRoundTrip(t *testing.T) {
	g := defaultProc()
	for _, q := range []float64{0.01, 0.5, 0.99} {
		x, err := g.Quantile(q, 2, 4)
		if err != nil {
			t.Fatalf("Quantile: %v", err)
		}
		if got := g.CDF(x, 2, 4); !almostEqual(got, q, 1e-10) {
			t.Errorf("CDF(Quantile(%v)) = %v", q, got)
		}
	}
	if _, err := g.Quantile(0.5, -1, 4); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative price should fail, got %v", err)
	}
}

func TestStepMatchesTransitionMoments(t *testing.T) {
	g := defaultProc()
	rng := rand.New(rand.NewSource(7))
	const p, tau, n = 2.0, 4.0, 100000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		x := g.Step(rng, p, tau)
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	if want := g.E(p, tau); !almostEqual(mean, want, 0.01) {
		t.Errorf("sample mean = %v, want ≈ %v", mean, want)
	}
	l, err := g.Transition(p, tau)
	if err != nil {
		t.Fatal(err)
	}
	variance := sumSq/n - mean*mean
	if want := l.Variance(); math.Abs(variance-want)/want > 0.05 {
		t.Errorf("sample variance = %v, want ≈ %v", variance, want)
	}
}

func TestSampleAt(t *testing.T) {
	g := defaultProc()
	rng := rand.New(rand.NewSource(11))
	times := []float64{0, 3, 7, 8, 12}
	path, err := g.SampleAt(rng, 2, times)
	if err != nil {
		t.Fatalf("SampleAt: %v", err)
	}
	if len(path) != len(times) {
		t.Fatalf("len(path) = %d, want %d", len(path), len(times))
	}
	if path[0] != 2 {
		t.Errorf("path[0] = %v, want 2", path[0])
	}
	for i, p := range path {
		if p <= 0 {
			t.Errorf("path[%d] = %v, want > 0", i, p)
		}
	}
	if _, err := g.SampleAt(rng, 2, []float64{0, 1, 1}); !errors.Is(err, ErrBadParam) {
		t.Errorf("non-increasing times should fail, got %v", err)
	}
	if _, err := g.SampleAt(rng, -2, times); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative p0 should fail, got %v", err)
	}
	if got, err := g.SampleAt(rng, 2, nil); err != nil || got != nil {
		t.Errorf("empty times: got %v, %v; want nil, nil", got, err)
	}
}

func TestPath(t *testing.T) {
	g := defaultProc()
	rng := rand.New(rand.NewSource(3))
	path, err := g.Path(rng, 2, 0.5, 10)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	if len(path) != 11 {
		t.Fatalf("len = %d, want 11", len(path))
	}
	if _, err := g.Path(rng, 2, -1, 10); !errors.Is(err, ErrBadParam) {
		t.Errorf("negative dt should fail, got %v", err)
	}
}

func TestCalibrateRecoversParameters(t *testing.T) {
	want := Process{Mu: 0.004, Sigma: 0.12}
	rng := rand.New(rand.NewSource(99))
	const dt = 1.0
	path, err := want.Path(rng, 2, dt, 200000)
	if err != nil {
		t.Fatalf("Path: %v", err)
	}
	got, err := Calibrate(path, dt)
	if err != nil {
		t.Fatalf("Calibrate: %v", err)
	}
	if math.Abs(got.Sigma-want.Sigma)/want.Sigma > 0.01 {
		t.Errorf("Sigma = %v, want ≈ %v", got.Sigma, want.Sigma)
	}
	// Drift is notoriously noisy; just require the right ballpark.
	if math.Abs(got.Mu-want.Mu) > 0.002 {
		t.Errorf("Mu = %v, want ≈ %v", got.Mu, want.Mu)
	}
}

func TestCalibrateErrors(t *testing.T) {
	tests := []struct {
		name   string
		prices []float64
		dt     float64
	}{
		{"tooShort", []float64{1, 2}, 1},
		{"badDT", []float64{1, 2, 3}, 0},
		{"nonPositive", []float64{1, -2, 3}, 1},
		{"constant", []float64{2, 2, 2, 2}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Calibrate(tt.prices, tt.dt); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestMartingaleProperty(t *testing.T) {
	// Property: discounted at µ, the expectation is invariant over horizons
	// (tower property of the GBM expectation).
	g := Process{Mu: 0.01, Sigma: 0.2}
	err := quick.Check(func(a, b float64) bool {
		p := 0.1 + math.Mod(math.Abs(a), 10)
		tau1 := 0.1 + math.Mod(math.Abs(b), 5)
		tau2 := tau1 + 2
		lhs := g.E(g.E(p, tau1), tau2-tau1)
		rhs := g.E(p, tau2)
		return math.Abs(lhs-rhs) < 1e-9*rhs
	}, &quick.Config{MaxCount: 300})
	if err != nil {
		t.Error(err)
	}
}
