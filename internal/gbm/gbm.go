// Package gbm models Token_b's price (denominated in Token_a) as the
// geometric Brownian motion of the paper's Assumption 4 (Eq. 1 of
// arXiv:2011.11325):
//
//	ln(P_{t+τ}/P_t) = (µ − σ²/2)τ + σ(W_{t+τ} − W_t)
//
// It exposes the paper's E(P_t, τ), P(x, P_t, τ) and C(x, P_t, τ) notation
// (expectation, transition density and transition CDF), exact lognormal path
// sampling for the Monte Carlo protocol simulator, and maximum-likelihood
// calibration from an observed price series (the "real market data" future
// direction of §V.B, exercised on synthetic data).
package gbm

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
)

// Errors returned by this package.
var (
	// ErrBadParam reports invalid process parameters.
	ErrBadParam = errors.New("gbm: invalid parameter")
	// ErrBadSeries reports a price series unsuitable for calibration.
	ErrBadSeries = errors.New("gbm: invalid price series")
)

// Process is a geometric Brownian motion with drift Mu (per hour) and
// volatility Sigma (per sqrt-hour), matching the units of Table III.
type Process struct {
	Mu    float64
	Sigma float64
}

// New validates the parameters and returns the process. Sigma must be
// strictly positive; Mu may take any finite sign (§III.F.4 explores µ < 0).
func New(mu, sigma float64) (Process, error) {
	if sigma <= 0 || math.IsNaN(sigma) || math.IsInf(sigma, 0) {
		return Process{}, fmt.Errorf("%w: sigma=%g must be > 0", ErrBadParam, sigma)
	}
	if math.IsNaN(mu) || math.IsInf(mu, 0) {
		return Process{}, fmt.Errorf("%w: mu=%g must be finite", ErrBadParam, mu)
	}
	return Process{Mu: mu, Sigma: sigma}, nil
}

// Transition returns the lognormal law of P_{t+tau} given P_t = p.
// tau must be positive and p must be positive.
func (g Process) Transition(p, tau float64) (dist.LogNormal, error) {
	if p <= 0 {
		return dist.LogNormal{}, fmt.Errorf("%w: price p=%g must be > 0", ErrBadParam, p)
	}
	if tau <= 0 {
		return dist.LogNormal{}, fmt.Errorf("%w: horizon tau=%g must be > 0", ErrBadParam, tau)
	}
	return dist.LogNormal{
		Mu:    math.Log(p) + (g.Mu-g.Sigma*g.Sigma/2)*tau,
		Sigma: g.Sigma * math.Sqrt(tau),
	}, nil
}

// mustTransition is Transition for internal call sites that have already
// validated p > 0 and tau > 0.
func (g Process) mustTransition(p, tau float64) dist.LogNormal {
	l, err := g.Transition(p, tau)
	if err != nil {
		panic(err)
	}
	return l
}

// mustArgs panics unless p and tau are finite and strictly positive — the
// same convention mustTransition enforces for PDF/CDF, applied to the cheap
// hot-path methods so a tau <= 0 (or NaN) can never leak a silently
// NaN-tainted price into a simulation.
func mustArgs(p, tau float64) {
	if !(p > 0) || !(tau > 0) || math.IsInf(p, 0) || math.IsInf(tau, 0) {
		panic(fmt.Errorf("%w: price p=%g and horizon tau=%g must be finite and > 0", ErrBadParam, p, tau))
	}
}

// E returns E[P_{t+tau} | P_t = p] = p·e^{µτ}, the paper's E(P_t, τ).
func (g Process) E(p, tau float64) float64 {
	mustArgs(p, tau)
	return p * math.Exp(g.Mu*tau)
}

// PDF returns the transition density P(x, P_t, τ) of the paper: the density
// of P_{t+tau} at x given P_t = p. It is zero for x <= 0.
func (g Process) PDF(x, p, tau float64) float64 {
	return g.mustTransition(p, tau).PDF(x)
}

// CDF returns the transition CDF C(x, P_t, τ): P[P_{t+tau} <= x | P_t = p].
func (g Process) CDF(x, p, tau float64) float64 {
	return g.mustTransition(p, tau).CDF(x)
}

// TailProb returns P[P_{t+tau} > x | P_t = p] = 1 − C(x, P_t, τ), computed
// without cancellation in the deep tail.
func (g Process) TailProb(x, p, tau float64) float64 {
	return g.mustTransition(p, tau).TailProb(x)
}

// PartialExpectationAbove returns E[P_{t+tau} · 1{P_{t+tau} > k} | P_t = p],
// the truncated moment used to evaluate the stage utilities in closed form.
func (g Process) PartialExpectationAbove(k, p, tau float64) float64 {
	return g.mustTransition(p, tau).PartialExpectationAbove(k)
}

// PartialExpectationBelow returns E[P_{t+tau} · 1{P_{t+tau} <= k} | P_t = p].
func (g Process) PartialExpectationBelow(k, p, tau float64) float64 {
	return g.mustTransition(p, tau).PartialExpectationBelow(k)
}

// Quantile returns the q-quantile of P_{t+tau} given P_t = p.
func (g Process) Quantile(q, p, tau float64) (float64, error) {
	l, err := g.Transition(p, tau)
	if err != nil {
		return 0, err
	}
	return l.Quantile(q)
}

// NormalSource yields independent standard-normal variates. *rand.Rand and
// the simulator's lazily seeded replica satisfy it, as do the sampler
// wrappers that feed antithetic or low-discrepancy increments to the same
// price process.
type NormalSource interface {
	NormFloat64() float64
}

// FillNormals fills z with independent standard normals drawn from src in
// one pass — the slab a batched path consumes. The draw order is exactly
// the per-event order, so slab-then-step reproduces step-by-step sampling
// byte for byte.
func FillNormals(src NormalSource, z []float64) {
	for i := range z {
		z[i] = src.NormFloat64()
	}
}

// Step samples P_{t+tau} given P_t = p with the exact lognormal increment.
// Like PDF and CDF it panics on non-positive or non-finite (p, tau).
func (g Process) Step(src NormalSource, p, tau float64) float64 {
	return g.StepZ(p, tau, src.NormFloat64())
}

// StepZ is Step with the standard normal increment z supplied by the
// caller — the deterministic core shared by every sampler mode. The float
// expression matches Step exactly, so pre-drawn slabs are bit-identical to
// per-event draws.
func (g Process) StepZ(p, tau, z float64) float64 {
	mustArgs(p, tau)
	return p * math.Exp((g.Mu-g.Sigma*g.Sigma/2)*tau+g.Sigma*math.Sqrt(tau)*z)
}

// StepBatch advances a vector of prices one increment of horizon tau each,
// using pre-drawn standard normals: out[i] = StepZ(p[i], tau, z[i]),
// bit-identical to the scalar calls. out may alias p; the three slices
// must share a length. The drift and volatility terms are hoisted so the
// loop is one multiply-exp per element.
func (g Process) StepBatch(out, p, z []float64, tau float64) error {
	if len(out) != len(p) || len(p) != len(z) {
		return fmt.Errorf("%w: StepBatch lengths out=%d p=%d z=%d must match", ErrBadParam, len(out), len(p), len(z))
	}
	if !(tau > 0) || math.IsInf(tau, 0) {
		return fmt.Errorf("%w: horizon tau=%g must be finite and > 0", ErrBadParam, tau)
	}
	drift := (g.Mu - g.Sigma*g.Sigma/2) * tau
	vol := g.Sigma * math.Sqrt(tau)
	for i, pi := range p {
		if !(pi > 0) || math.IsInf(pi, 0) {
			return fmt.Errorf("%w: price p[%d]=%g must be finite and > 0", ErrBadParam, i, pi)
		}
		out[i] = pi * math.Exp(drift+vol*z[i])
	}
	return nil
}

// SampleAt samples the process at the supplied increasing times, starting
// from price p0 at time times[0] (the first entry is the start time, whose
// price is p0 and is included in the output). Times must be strictly
// increasing.
func (g Process) SampleAt(src NormalSource, p0 float64, times []float64) ([]float64, error) {
	if p0 <= 0 {
		return nil, fmt.Errorf("%w: p0=%g must be > 0", ErrBadParam, p0)
	}
	if len(times) == 0 {
		return nil, nil
	}
	out := make([]float64, len(times))
	out[0] = p0
	for i := 1; i < len(times); i++ {
		dt := times[i] - times[i-1]
		if dt <= 0 {
			return nil, fmt.Errorf("%w: times must be strictly increasing (times[%d]=%g, times[%d]=%g)",
				ErrBadParam, i-1, times[i-1], i, times[i])
		}
		out[i] = g.Step(src, out[i-1], dt)
	}
	return out, nil
}

// SampleAtBatch is SampleAt with caller-owned storage and slab-filled
// draws: out must have len(times) capacity; the len(times)-1 increments are
// drawn into out[1:] in one FillNormals pass and then consumed in place as
// the chain is walked, so no scratch beyond out is needed and the result is
// bit-identical to SampleAt. It returns out resliced to len(times). Times
// are validated before any normal is drawn, so an invalid grid consumes
// nothing from src.
func (g Process) SampleAtBatch(src NormalSource, p0 float64, times, out []float64) ([]float64, error) {
	if p0 <= 0 {
		return nil, fmt.Errorf("%w: p0=%g must be > 0", ErrBadParam, p0)
	}
	if len(times) == 0 {
		return nil, nil
	}
	if cap(out) < len(times) {
		return nil, fmt.Errorf("%w: out capacity %d < %d times", ErrBadParam, cap(out), len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("%w: times must be strictly increasing (times[%d]=%g, times[%d]=%g)",
				ErrBadParam, i-1, times[i-1], i, times[i])
		}
	}
	out = out[:len(times)]
	FillNormals(src, out[1:])
	out[0] = p0
	for i := 1; i < len(times); i++ {
		out[i] = g.StepZ(out[i-1], times[i]-times[i-1], out[i])
	}
	return out, nil
}

// Path samples n equally spaced steps of size dt starting from p0,
// returning n+1 prices including the start.
func (g Process) Path(src NormalSource, p0, dt float64, n int) ([]float64, error) {
	if n < 0 || dt <= 0 || p0 <= 0 {
		return nil, fmt.Errorf("%w: path(p0=%g, dt=%g, n=%d)", ErrBadParam, p0, dt, n)
	}
	out := make([]float64, n+1)
	out[0] = p0
	for i := 1; i <= n; i++ {
		out[i] = g.Step(src, out[i-1], dt)
	}
	return out, nil
}

// Calibrate estimates (Mu, Sigma) by maximum likelihood from a price series
// sampled at uniform interval dt. The series must contain at least three
// positive prices so the variance estimate is defined.
func Calibrate(prices []float64, dt float64) (Process, error) {
	if dt <= 0 {
		return Process{}, fmt.Errorf("%w: dt=%g must be > 0", ErrBadParam, dt)
	}
	if len(prices) < 3 {
		return Process{}, fmt.Errorf("%w: need >= 3 prices, got %d", ErrBadSeries, len(prices))
	}
	n := len(prices) - 1
	rets := make([]float64, n)
	for i := 0; i < n; i++ {
		if prices[i] <= 0 || prices[i+1] <= 0 {
			return Process{}, fmt.Errorf("%w: non-positive price at index %d", ErrBadSeries, i)
		}
		rets[i] = math.Log(prices[i+1] / prices[i])
	}
	var mean float64
	for _, r := range rets {
		mean += r
	}
	mean /= float64(n)
	var ss float64
	for _, r := range rets {
		d := r - mean
		ss += d * d
	}
	variance := ss / float64(n-1)
	if variance <= 0 {
		return Process{}, fmt.Errorf("%w: zero return variance", ErrBadSeries)
	}
	sigma := math.Sqrt(variance / dt)
	mu := mean/dt + sigma*sigma/2
	return Process{Mu: mu, Sigma: sigma}, nil
}
