// Package packetized implements the packetized-payments comparator from the
// authors' companion work (Dubovitskaya, Ackerer and Xu, "A Game-Theoretic
// Analysis of Cross-ledger Swaps with Packetized Payments", cited as [20]
// in §II of the HTLC paper): instead of one all-or-nothing HTLC swap, the
// parties split the trade into n equal packets, each executed as its own
// HTLC round, aborting the remainder on the first withdrawal.
//
// Because the stage utilities are linear in the traded amounts, scaling
// both legs by 1/n leaves the *price* thresholds of each round identical to
// the full game's (amount invariance, test-enforced via internal/core).
// What changes is the exposure profile: the value at risk in any single
// round drops by the factor n, at the cost of a longer horizon. Two
// failure semantics are modelled:
//
//   - abort-on-failure (trust is broken): the completed fraction compounds
//     like a geometric series, q(1−q^n)/(n(1−q)) for per-packet success q,
//     so throughput *falls* with n — packetization buys bounded exposure,
//     not completion probability;
//   - continue-after-failure (a rational withdrawal is not malice): each
//     packet is an independent opportunity and the expected completed
//     fraction stays near the per-packet success rate regardless of n,
//     while exposure still shrinks by n — the companion protocol's case.
//
// With a fixed exchange rate, later packets face drifted prices and every
// metric decays; per-packet re-quoting (scale invariance makes this a cheap
// rescaling) removes the drift penalty.
package packetized

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/gbm"
	"repro/internal/lazyrng"
	"repro/internal/qmc"
	"repro/internal/solvecache"
	"repro/internal/stats"
	"repro/internal/sweep"
	"repro/internal/timeline"
	"repro/internal/utility"
)

// ErrBadConfig reports an invalid configuration.
var ErrBadConfig = errors.New("packetized: invalid configuration")

// Config parameterises a packetized-swap experiment.
type Config struct {
	// Params is the market/preference configuration.
	Params utility.Params
	// PStar is the agreed exchange rate (total Token_a per total Token_b).
	PStar float64
	// Packets is the number of equal packets n ≥ 1.
	Packets int
	// Requote re-solves the SR-maximising rate for each packet at its
	// opening price instead of keeping PStar fixed.
	Requote bool
	// ContinueAfterFailure keeps trading the remaining packets after a
	// withdrawal instead of aborting the engagement.
	ContinueAfterFailure bool
	// ForceInitiate starts the engagement even when the fixed rate lies
	// outside A's feasible band, so the completion estimate conditions on
	// initiation exactly as the analytic SR of Eq. 31 does — the mode the
	// variant layer's Monte Carlo cross-validation runs in.
	ForceInitiate bool
	// Runs is the number of Monte Carlo executions.
	Runs int
	// Seed drives the price paths.
	Seed int64
	// Sampler selects how price increments are drawn (internal/qmc).
	// Pseudo — the zero value — keeps the historical single sequential
	// stream byte-for-byte. Antithetic gives runs (2k, 2k+1) a shared
	// per-pair seed with the odd member's increments negated. Sobol draws
	// each run's first qmc.MaxDim increments from a scrambled Sobol point
	// (replicate-striped like the MC engine) padded by a per-run pseudo
	// tail, so runs with many packets stay unbiased. Under the
	// variance-reduced modes FractionStdErr is still the i.i.d. formula
	// and overstates the error — a conservative bound.
	Sampler qmc.Mode
}

func (c Config) validate() error {
	if err := c.Params.Validate(); err != nil {
		return fmt.Errorf("packetized: %w", err)
	}
	if c.PStar <= 0 {
		return fmt.Errorf("%w: PStar=%g", ErrBadConfig, c.PStar)
	}
	if c.Packets < 1 {
		return fmt.Errorf("%w: packets=%d", ErrBadConfig, c.Packets)
	}
	if c.Runs < 1 {
		return fmt.Errorf("%w: runs=%d", ErrBadConfig, c.Runs)
	}
	if _, err := c.Sampler.Canon(); err != nil {
		return fmt.Errorf("packetized: %w", err)
	}
	return nil
}

// sobolScrambleShard offsets the per-replicate Sobol scramble seeds into
// a seed-stream region no run index reaches, mirroring the MC engine's
// convention (internal/swapsim).
const sobolScrambleShard = 1 << 30

// runNormals serves a run's pre-filled Sobol slab first, then falls back
// to the run's seeded pseudo stream, negating pseudo draws on antithetic
// odd members. Pseudo-mode runs bypass it entirely so the historical
// sequential stream is untouched.
type runNormals struct {
	rng  *rand.Rand
	neg  bool
	slab []float64
	k    int
}

// NormFloat64 implements gbm.NormalSource.
func (n *runNormals) NormFloat64() float64 {
	if n.k < len(n.slab) {
		v := n.slab[n.k]
		n.k++
		return v
	}
	v := n.rng.NormFloat64()
	if n.neg {
		return -v
	}
	return v
}

// Result aggregates the Monte Carlo estimate.
type Result struct {
	// FullCompletion estimates P(all n packets complete).
	FullCompletion stats.Proportion
	// ExpectedFraction is the mean completed fraction of the notional.
	ExpectedFraction float64
	// FractionStdErr is the standard error of ExpectedFraction.
	FractionStdErr float64
	// MeanPacketsDone is the mean number of completed packets.
	MeanPacketsDone float64
	// ExposurePerRound is the Token_a notional at risk in any single round
	// (PStar / n) — the companion protocol's headline reduction.
	ExposurePerRound float64
}

// Run executes the Monte Carlo experiment. Each run walks the packets in
// sequence: packet k opens at the price where packet k−1 settled (one full
// protocol cycle later), plays the basic game's threshold strategies (the
// price thresholds are amount-invariant), and a withdrawal aborts the rest.
func Run(cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	tl, err := timeline.Idealized(cfg.Params.Chains)
	if err != nil {
		return Result{}, fmt.Errorf("packetized: %w", err)
	}
	// A packet cycle spans initiation to the later of the two receipts.
	cycle := tl.TA
	if tl.TB > cycle {
		cycle = tl.TB
	}

	// The stage solves route through the process-wide solve cache: the same
	// parameter set solved by the figures, the scenario batch or another
	// packet count shares one model and its memoized cells.
	m, err := solvecache.SharedModel(cfg.Params)
	if err != nil {
		return Result{}, fmt.Errorf("packetized: %w", err)
	}
	// Fixed-rate strategy solved once; re-quoting reuses scale invariance:
	// the optimal rate and thresholds at price p are the P0-solution scaled
	// by p/P0.
	fixed, err := m.Strategy(cfg.PStar)
	if err != nil {
		return Result{}, fmt.Errorf("packetized: %w", err)
	}
	var quoted core.Strategy
	var quotedViable bool
	if cfg.Requote {
		if pstar, _, err := m.OptimalRate(); err == nil {
			quotedViable = true
			if quoted, err = m.Strategy(pstar); err != nil {
				return Result{}, fmt.Errorf("packetized: %w", err)
			}
		} else if !errors.Is(err, core.ErrNotViable) {
			return Result{}, fmt.Errorf("packetized: %w", err)
		}
	}

	mode, err := cfg.Sampler.Canon()
	if err != nil {
		return Result{}, fmt.Errorf("packetized: %w", err)
	}
	var (
		// src is the active normal source for the run: the shared pseudo
		// stream in pseudo mode, a per-run reseeded (and possibly
		// slab-fronted) source otherwise. The per-run stream rides one
		// lazyrng source — math/rand's exact draws with an O(1) reseed —
		// so reseeding every run costs nothing.
		src    gbm.NormalSource
		norm   runNormals
		psrc   *lazyrng.Source
		sobols [qmc.SobolReplicates]*qmc.Sobol
		slab   [qmc.MaxDim]float64
	)
	switch mode {
	case qmc.ModePseudo:
		src = rand.New(rand.NewSource(cfg.Seed))
	case qmc.ModeSobol:
		for i := range sobols {
			if sobols[i], err = qmc.NewSobol(qmc.MaxDim, sweep.Seed(cfg.Seed, sobolScrambleShard+i)); err != nil {
				return Result{}, fmt.Errorf("packetized: %w", err)
			}
		}
	}
	if mode != qmc.ModePseudo {
		psrc = lazyrng.New(0)
		norm.rng = rand.New(psrc)
		src = &norm
	}
	full := 0
	var fracSum, fracSq, packetsSum float64
	for run := 0; run < cfg.Runs; run++ {
		switch mode {
		case qmc.ModeAntithetic:
			psrc.Seed(sweep.Seed(cfg.Seed, qmc.PairBase(run)))
			norm.neg = qmc.PairNegated(run)
			norm.k = 0
		case qmc.ModeSobol:
			sobols[qmc.SobolReplicate(run)].Normals(qmc.SobolPoint(run), slab[:])
			psrc.Seed(sweep.Seed(cfg.Seed, run))
			norm.slab = slab[:]
			norm.k = 0
		}
		price := cfg.Params.P0
		done := 0
		for k := 0; k < cfg.Packets; k++ {
			strat := fixed
			if cfg.Requote {
				if !quotedViable {
					break
				}
				scale := price / cfg.Params.P0
				strat = core.Strategy{
					PStar:          quoted.PStar * scale,
					AliceInitiates: true,
					BobContT2:      quoted.BobContT2.Scale(scale),
					AliceCutoffT3:  quoted.AliceCutoffT3 * scale,
				}
			} else if !strat.AliceInitiates && !cfg.ForceInitiate && k == 0 {
				// A fixed rate outside the feasible band never starts.
				break
			}
			pT2 := cfg.Params.Price.Step(src, price, cfg.Params.Chains.TauA)
			success := strat.BobContT2.Contains(pT2)
			var pEnd float64
			if success {
				pT3 := cfg.Params.Price.Step(src, pT2, cfg.Params.Chains.TauB)
				success = pT3 > strat.AliceCutoffT3
				pEnd = pT3
			} else {
				pEnd = pT2
			}
			if success {
				done++
			} else if !cfg.ContinueAfterFailure {
				break
			}
			// The next packet opens after the remainder of the cycle.
			elapsed := cfg.Params.Chains.TauA
			if pEnd != pT2 {
				elapsed += cfg.Params.Chains.TauB
			}
			if rest := cycle - elapsed; rest > 0 {
				price = cfg.Params.Price.Step(src, pEnd, rest)
			} else {
				price = pEnd
			}
		}
		frac := float64(done) / float64(cfg.Packets)
		fracSum += frac
		fracSq += frac * frac
		packetsSum += float64(done)
		if done == cfg.Packets {
			full++
		}
	}

	prop, err := stats.NewProportion(full, cfg.Runs)
	if err != nil {
		return Result{}, fmt.Errorf("packetized: %w", err)
	}
	n := float64(cfg.Runs)
	mean := fracSum / n
	variance := fracSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Result{
		FullCompletion:   prop,
		ExpectedFraction: mean,
		FractionStdErr:   sqrtOverN(variance, n),
		MeanPacketsDone:  packetsSum / n,
		ExposurePerRound: cfg.PStar / float64(cfg.Packets),
	}, nil
}

func sqrtOverN(variance, n float64) float64 {
	if n <= 1 || variance <= 0 {
		return 0
	}
	return math.Sqrt(variance / n)
}
