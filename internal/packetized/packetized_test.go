package packetized

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/qmc"
	"repro/internal/utility"
)

func baseConfig() Config {
	return Config{
		Params:  utility.Default(),
		PStar:   2.0,
		Packets: 4,
		Runs:    20000,
		Seed:    9,
	}
}

func TestConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"badParams", func(c *Config) { c.Params.P0 = 0 }},
		{"zeroRate", func(c *Config) { c.PStar = 0 }},
		{"zeroPackets", func(c *Config) { c.Packets = 0 }},
		{"zeroRuns", func(c *Config) { c.Runs = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := baseConfig()
			tt.mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestAmountInvarianceOfThresholds(t *testing.T) {
	// The premise of the packetized design: scaling both legs of the swap
	// leaves the price thresholds unchanged, so a 1/n packet plays the same
	// stage game. The solver sees only the rate P* (amounts are implicit),
	// so this is equivalent to checking that the solved thresholds depend
	// on amounts only through their ratio — asserted here by construction
	// of the model API: P* is that ratio.
	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	s1, err := m.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	// A packet swaps P*/n Token_a for 1/n Token_b: the rate is still 2.0.
	s2, err := m.Strategy(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if s1.AliceCutoffT3 != s2.AliceCutoffT3 || s1.BobContT2.TotalLen() != s2.BobContT2.TotalLen() {
		t.Error("thresholds must be amount-invariant")
	}
}

func TestSinglePacketMatchesAnalyticSR(t *testing.T) {
	// n = 1 is exactly the single-shot game: full completion ≈ SR(P*).
	cfg := baseConfig()
	cfg.Packets = 1
	cfg.Runs = 60000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := m.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if analytic < res.FullCompletion.Lo-0.01 || analytic > res.FullCompletion.Hi+0.01 {
		t.Errorf("analytic SR %.4f outside MC interval %v", analytic, res.FullCompletion)
	}
	if res.ExpectedFraction != res.FullCompletion.P {
		t.Errorf("with one packet, fraction %v must equal completion %v",
			res.ExpectedFraction, res.FullCompletion.P)
	}
	if res.ExposurePerRound != 2.0 {
		t.Errorf("exposure = %v, want full notional", res.ExposurePerRound)
	}
}

func TestFractionDominatesFullCompletion(t *testing.T) {
	// The completed fraction is ≥ the all-or-nothing indicator pointwise,
	// so its mean dominates the full-completion probability.
	for _, n := range []int{2, 4, 8} {
		cfg := baseConfig()
		cfg.Packets = n
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExpectedFraction < res.FullCompletion.P-1e-12 {
			t.Errorf("n=%d: fraction %v below completion %v",
				n, res.ExpectedFraction, res.FullCompletion.P)
		}
		if res.ExposurePerRound != 2.0/float64(n) {
			t.Errorf("n=%d: exposure %v, want %v", n, res.ExposurePerRound, 2.0/float64(n))
		}
		if res.MeanPacketsDone < 0 || res.MeanPacketsDone > float64(n) {
			t.Errorf("n=%d: mean packets %v out of range", n, res.MeanPacketsDone)
		}
	}
}

func TestFixedRateFullCompletionDecaysWithPackets(t *testing.T) {
	// With a fixed rate, more packets stretch the horizon and the drifting
	// price eventually exits the viable band: P(all complete) falls in n.
	var prev float64 = 1.1
	for _, n := range []int{1, 4, 16} {
		cfg := baseConfig()
		cfg.Packets = n
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if res.FullCompletion.P > prev+0.01 {
			t.Errorf("n=%d: completion %v rose above %v", n, res.FullCompletion.P, prev)
		}
		prev = res.FullCompletion.P
	}
}

func TestRequoteBeatsFixedRateOnFraction(t *testing.T) {
	// Re-quoting each packet at the prevailing price removes the drift
	// penalty: the expected completed fraction improves on the fixed-rate
	// protocol for multi-packet swaps.
	cfgFixed := baseConfig()
	cfgFixed.Packets = 8
	fixed, err := Run(cfgFixed)
	if err != nil {
		t.Fatal(err)
	}
	cfgQuote := cfgFixed
	cfgQuote.Requote = true
	quoted, err := Run(cfgQuote)
	if err != nil {
		t.Fatal(err)
	}
	if quoted.ExpectedFraction <= fixed.ExpectedFraction {
		t.Errorf("requote fraction %v should beat fixed %v",
			quoted.ExpectedFraction, fixed.ExpectedFraction)
	}
}

func TestInfeasibleFixedRateNeverStarts(t *testing.T) {
	cfg := baseConfig()
	cfg.PStar = 5 // far outside the feasible band
	cfg.Runs = 2000
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExpectedFraction != 0 || res.FullCompletion.P != 0 {
		t.Errorf("infeasible rate should never start: %+v", res)
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.ExpectedFraction != b.ExpectedFraction ||
		a.FullCompletion.Successes != b.FullCompletion.Successes {
		t.Error("same seed diverged")
	}
}

func TestFractionStdErrSensible(t *testing.T) {
	res, err := Run(baseConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.FractionStdErr <= 0 || res.FractionStdErr > 0.01 {
		t.Errorf("stderr = %v, want small positive", res.FractionStdErr)
	}
	if math.IsNaN(res.ExpectedFraction) {
		t.Error("NaN fraction")
	}
}

func TestContinueSemanticsKeepFractionNearPerPacketSR(t *testing.T) {
	// With continue-after-failure and per-packet re-quoting, each packet is
	// an independent optimal stage game: the expected completed fraction
	// stays near the stage-game optimum regardless of n.
	m, err := core.New(utility.Default())
	if err != nil {
		t.Fatal(err)
	}
	_, srOpt, err := m.OptimalRate()
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{2, 8, 16} {
		cfg := baseConfig()
		cfg.Packets = n
		cfg.Requote = true
		cfg.ContinueAfterFailure = true
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.ExpectedFraction-srOpt) > 0.03 {
			t.Errorf("n=%d: continue fraction %v, want ≈ stage optimum %v",
				n, res.ExpectedFraction, srOpt)
		}
	}
}

func TestContinueDominatesAbort(t *testing.T) {
	for _, n := range []int{4, 8} {
		abort := baseConfig()
		abort.Packets = n
		abort.Requote = true
		cont := abort
		cont.ContinueAfterFailure = true
		a, err := Run(abort)
		if err != nil {
			t.Fatal(err)
		}
		c, err := Run(cont)
		if err != nil {
			t.Fatal(err)
		}
		if c.ExpectedFraction < a.ExpectedFraction-1e-9 {
			t.Errorf("n=%d: continue fraction %v below abort %v",
				n, c.ExpectedFraction, a.ExpectedFraction)
		}
	}
}

func TestForceInitiateConditionsOnInitiation(t *testing.T) {
	// Doubled volatility empties A's feasible band at the fair rate: the
	// rational engagement never starts, so the completed fraction is zero …
	p := utility.Default()
	p.Price.Sigma = 0.2
	cfg := Config{Params: p, PStar: 2.0, Packets: 1, Runs: 2000, Seed: 3}
	rational, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rational.ExpectedFraction != 0 || rational.FullCompletion.P != 0 {
		t.Fatalf("non-viable rate still completed packets: %+v", rational)
	}
	// … while forcing initiation samples the basic game conditioned on
	// initiation, exactly what the analytic SR of Eq. 31 measures.
	cfg.ForceInitiate = true
	forced, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.SuccessRate(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if want < forced.FullCompletion.Lo-0.01 || want > forced.FullCompletion.Hi+0.01 {
		t.Errorf("forced n=1 completion [%.4f, %.4f] should cover SR %.4f",
			forced.FullCompletion.Lo, forced.FullCompletion.Hi, want)
	}
}

// TestSamplerModesAgree runs the same experiment under every sampling
// mode: the variance-reduced estimators must land inside (a slightly
// widened) pseudo Wilson interval, and each mode must be deterministic
// for a fixed seed. This also exercises the slab-fronted normal source
// (Sobol points first, per-run pseudo tail, antithetic negation).
func TestSamplerModesAgree(t *testing.T) {
	base := baseConfig()
	base.Runs = 40000
	pseudo, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []qmc.Mode{qmc.ModeAntithetic, qmc.ModeSobol} {
		cfg := base
		cfg.Sampler = mode
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.FullCompletion.P < pseudo.FullCompletion.Lo-0.01 ||
			res.FullCompletion.P > pseudo.FullCompletion.Hi+0.01 {
			t.Errorf("%s full completion %.4f outside pseudo interval [%.4f, %.4f]",
				mode, res.FullCompletion.P, pseudo.FullCompletion.Lo, pseudo.FullCompletion.Hi)
		}
		if d := math.Abs(res.ExpectedFraction - pseudo.ExpectedFraction); d > 0.02 {
			t.Errorf("%s fraction %.4f vs pseudo %.4f (|delta| = %.4f)",
				mode, res.ExpectedFraction, pseudo.ExpectedFraction, d)
		}
		again, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s rerun: %v", mode, err)
		}
		if again != res {
			t.Errorf("%s not deterministic for a fixed seed:\n  %+v\n  %+v", mode, res, again)
		}
	}
}

// TestSamplerRequoteAndContinue drives the variance-reduced source
// through the requoting and continue-after-failure paths, where packet
// counts vary per run and the pseudo tail past the Sobol slab is hit.
func TestSamplerRequoteAndContinue(t *testing.T) {
	cfg := baseConfig()
	cfg.Runs = 8000
	cfg.Packets = 8
	cfg.Requote = true
	cfg.ContinueAfterFailure = true
	cfg.Sampler = qmc.ModeSobol
	sobol, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Sampler = qmc.ModePseudo
	pseudo, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d := math.Abs(sobol.ExpectedFraction - pseudo.ExpectedFraction); d > 0.03 {
		t.Errorf("sobol requote fraction %.4f vs pseudo %.4f (|delta| = %.4f)",
			sobol.ExpectedFraction, pseudo.ExpectedFraction, d)
	}
}
