// Ablation benchmarks for the numerical design choices called out in
// DESIGN.md: quadrature order, threshold-scan resolution, and the grid-DP
// resolution of the cross-check engine. Each benchmark reports the accuracy
// impact of the cheaper configuration as a custom metric (deviation from
// the reference configuration ×1e9, reported as "err_1e9") alongside its
// speed, so the speed/accuracy trade-off is visible in one run.
package repro_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/game"
	"repro/internal/packetized"
	"repro/internal/repeated"
	"repro/internal/utility"
)

// referenceSR computes SR(2.0) at a deliberately lavish configuration.
func referenceSR(b *testing.B) float64 {
	b.Helper()
	m, err := core.New(utility.Default(), core.WithQuadOrder(256), core.WithScanPoints(4000))
	if err != nil {
		b.Fatal(err)
	}
	sr, err := m.SuccessRate(2.0)
	if err != nil {
		b.Fatal(err)
	}
	return sr
}

// benchSolverConfig measures one solver configuration against the reference.
func benchSolverConfig(b *testing.B, opts ...core.Option) {
	b.Helper()
	ref := referenceSR(b)
	var sr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.New(utility.Default(), opts...)
		if err != nil {
			b.Fatal(err)
		}
		if sr, err = m.SuccessRate(2.0); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(math.Abs(sr-ref)*1e9, "err_1e9")
}

// BenchmarkAblation_QuadOrder16 .. 128: Gauss–Legendre order for the stage
// integrals (default 64).
func BenchmarkAblation_QuadOrder16(b *testing.B) {
	benchSolverConfig(b, core.WithQuadOrder(16))
}

func BenchmarkAblation_QuadOrder32(b *testing.B) {
	benchSolverConfig(b, core.WithQuadOrder(32))
}

func BenchmarkAblation_QuadOrder64(b *testing.B) {
	benchSolverConfig(b, core.WithQuadOrder(64))
}

func BenchmarkAblation_QuadOrder128(b *testing.B) {
	benchSolverConfig(b, core.WithQuadOrder(128))
}

// BenchmarkAblation_ScanPoints150 .. 2400: panels in the threshold
// root-scan (default 600).
func BenchmarkAblation_ScanPoints150(b *testing.B) {
	benchSolverConfig(b, core.WithScanPoints(150))
}

func BenchmarkAblation_ScanPoints600(b *testing.B) {
	benchSolverConfig(b, core.WithScanPoints(600))
}

func BenchmarkAblation_ScanPoints2400(b *testing.B) {
	benchSolverConfig(b, core.WithScanPoints(2400))
}

// benchGridDP measures the grid-DP cross-check at a given resolution,
// reporting the t3-threshold deviation from the closed form.
func benchGridDP(b *testing.B, gridN int) {
	b.Helper()
	params := utility.Default()
	m, err := core.New(params)
	if err != nil {
		b.Fatal(err)
	}
	cut, err := m.CutoffT3(2.0)
	if err != nil {
		b.Fatal(err)
	}
	g, err := game.SwapGame(params, 2.0)
	if err != nil {
		b.Fatal(err)
	}
	var dev float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		grid := game.DefaultGrid(params, gridN, 10)
		sol, err := g.Solve(grid)
		if err != nil {
			b.Fatal(err)
		}
		t3, err := sol.StageByName("t3")
		if err != nil {
			b.Fatal(err)
		}
		for j, cont := range t3.PolicyCont {
			if cont {
				dev = math.Abs(grid[j]-cut) / cut
				break
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(dev*1e9, "err_1e9")
}

// BenchmarkAblation_GridDP200 .. 1600: state-grid resolution of the DP
// engine (the cross-check tests use 1200).
func BenchmarkAblation_GridDP200(b *testing.B) { benchGridDP(b, 200) }

func BenchmarkAblation_GridDP400(b *testing.B) { benchGridDP(b, 400) }

func BenchmarkAblation_GridDP800(b *testing.B) { benchGridDP(b, 800) }

func BenchmarkAblation_GridDP1600(b *testing.B) { benchGridDP(b, 1600) }

// BenchmarkAblation_HermiteOrder compares the Gauss–Hermite order used by
// the uncertain-amount extension (default 48), reporting the SR_x deviation.
func benchHermite(b *testing.B, n int) {
	b.Helper()
	mRef, err := core.New(utility.Default(), core.WithHermiteOrder(128))
	if err != nil {
		b.Fatal(err)
	}
	uRef, err := mRef.UncertainWithBudget(5)
	if err != nil {
		b.Fatal(err)
	}
	ref, err := uRef.SuccessRate(4)
	if err != nil {
		b.Fatal(err)
	}
	var sr float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := core.New(utility.Default(), core.WithHermiteOrder(n))
		if err != nil {
			b.Fatal(err)
		}
		u, err := m.UncertainWithBudget(5)
		if err != nil {
			b.Fatal(err)
		}
		if sr, err = u.SuccessRate(4); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(math.Abs(sr-ref)*1e9, "err_1e9")
}

func BenchmarkAblation_Hermite16(b *testing.B) { benchHermite(b, 16) }

func BenchmarkAblation_Hermite48(b *testing.B) { benchHermite(b, 48) }

func BenchmarkAblation_Hermite96(b *testing.B) { benchHermite(b, 96) }

// BenchmarkExtension_BayesianSolve measures the incomplete-information
// success rate with a two-point prior on each side.
func BenchmarkExtension_BayesianSolve(b *testing.B) {
	m, err := core.New(utility.Default())
	if err != nil {
		b.Fatal(err)
	}
	bay, err := m.Bayesian(
		core.TypePrior{Values: []float64{0.2, 0.4}, Probs: []float64{0.5, 0.5}},
		core.TypePrior{Values: []float64{0.2, 0.4}, Probs: []float64{0.5, 0.5}},
	)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := bay.SuccessRate(2.0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtension_RepeatedGame measures a 150-round repeated engagement
// with reputation dynamics (strategy cache included).
func BenchmarkExtension_RepeatedGame(b *testing.B) {
	cfg := repeated.Config{
		Params:         utility.Default(),
		Rounds:         150,
		GapHours:       24,
		ReputationGain: 0.02,
		ReputationLoss: 0.2,
		IdleRecovery:   0.15,
		AlphaMax:       0.6,
		Seed:           11,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := repeated.Play(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Rounds) == 0 {
			b.Fatal("no rounds")
		}
	}
}

// BenchmarkExtension_Packetized measures an 8-packet packetized-swap Monte
// Carlo (2000 runs per iteration).
func BenchmarkExtension_Packetized(b *testing.B) {
	cfg := packetized.Config{
		Params:  utility.Default(),
		PStar:   2.0,
		Packets: 8,
		Requote: true,
		Runs:    2000,
		Seed:    77,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := packetized.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if res.FullCompletion.N != 2000 {
			b.Fatal("short run")
		}
	}
}
