package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkMC_PathLegacyAlloc-8        	   38552	     31493 ns/op	   11359 B/op	      85 allocs/op
BenchmarkMC_PathReused               	   74062	     16233 ns/op	    2157 B/op	      49 allocs/op
BenchmarkMC_EngineFixedN1Worker      	      36	  33094187 ns/op	     61884 paths/s	 4422994 B/op	  100913 allocs/op
BenchmarkMC_ConvergenceSobol         	     175	   1204768 ns/op	   6587229 effpaths/s	    424982 paths/s	         0.06452 pathsratio	   31489 B/op	    1090 allocs/op
PASS
ok  	repro	7.840s
`

func TestParseBenchOutput(t *testing.T) {
	benches, err := parse(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(benches) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(benches))
	}
	first := benches[0]
	if first.Name != "BenchmarkMC_PathLegacyAlloc" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", first.Name)
	}
	if first.Iterations != 38552 || first.NsPerOp != 31493 || first.BytesPerOp != 11359 || first.AllocsPerOp != 85 {
		t.Errorf("metrics = %+v", first)
	}
	if benches[2].PathsPerSec != 61884 {
		t.Errorf("custom paths/s metric = %v, want 61884", benches[2].PathsPerSec)
	}
	conv := benches[3]
	if conv.EffPathsPerSec != 6587229 {
		t.Errorf("effpaths/s = %v, want 6587229", conv.EffPathsPerSec)
	}
	if conv.PathsRatio != 0.06452 {
		t.Errorf("pathsratio = %v, want 0.06452", conv.PathsRatio)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok repro 1s\n")); err == nil {
		t.Error("empty bench output should be an error")
	}
}

// writeBaseline runs the tool in write mode against the sample output and
// returns the JSON path.
func writeBaseline(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_mc.json")
	var out strings.Builder
	if err := run([]string{"-o", path}, strings.NewReader(sample), &out); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestWriteAndCheckRoundTrip(t *testing.T) {
	path := writeBaseline(t)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatalf("artifact is not valid JSON: %v", err)
	}
	if len(f.Benchmarks) != 4 || f.Note == "" {
		t.Fatalf("artifact = %+v", f)
	}
	// The identical run passes the 2x gate.
	var out strings.Builder
	if err := run([]string{"-against", path}, strings.NewReader(sample), &out); err != nil {
		t.Errorf("identical run failed the gate: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("check output lacks per-benchmark lines:\n%s", out.String())
	}
}

func TestCheckFailsOnAllocRegression(t *testing.T) {
	path := writeBaseline(t)
	regressed := strings.ReplaceAll(sample,
		"   74062	     16233 ns/op	    2157 B/op	      49 allocs/op",
		"   74062	     16233 ns/op	    2157 B/op	     199 allocs/op")
	var out strings.Builder
	err := run([]string{"-against", path, "-max-alloc-ratio", "2"}, strings.NewReader(regressed), &out)
	if err == nil {
		t.Fatalf("4x alloc regression passed the 2x gate:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkMC_PathReused") {
		t.Errorf("failure does not name the regressed benchmark: %v", err)
	}
}

// TestPathsRatioGate exercises the -max-paths-ratio ceiling: the sample's
// sobol convergence (0.065x pseudo) passes a 0.5 gate, a regressed run at
// 1.29x fails it by name, and without the flag the ratio is reported but
// never gated.
func TestPathsRatioGate(t *testing.T) {
	path := writeBaseline(t)
	var out strings.Builder
	if err := run([]string{"-against", path, "-max-paths-ratio", "0.5"}, strings.NewReader(sample), &out); err != nil {
		t.Errorf("0.065x pathsratio failed the 0.5 gate: %v\n%s", err, out.String())
	}
	regressed := strings.ReplaceAll(sample, "0.06452 pathsratio", "1.290 pathsratio")
	err := run([]string{"-against", path, "-max-paths-ratio", "0.5"}, strings.NewReader(regressed), &strings.Builder{})
	if err == nil {
		t.Fatal("1.29x pathsratio passed the 0.5 gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkMC_ConvergenceSobol") {
		t.Errorf("failure does not name the regressed benchmark: %v", err)
	}
	if err := run([]string{"-against", path}, strings.NewReader(regressed), &strings.Builder{}); err != nil {
		t.Errorf("without -max-paths-ratio the ratio must not gate: %v", err)
	}
}

func TestParseGroupsMetric(t *testing.T) {
	line := "BenchmarkFiguresFull \t 1\t 610812345 ns/op\t 18.00 groups\t 123 B/op\t 45 allocs/op\n"
	benches, err := parse(strings.NewReader(line))
	if err != nil {
		t.Fatal(err)
	}
	if benches[0].Groups != 18 {
		t.Errorf("groups = %v, want 18", benches[0].Groups)
	}
}

// TestMaxWallGate exercises the absolute wall-time ceiling: a benchmark
// under its Name=seconds budget passes, one over it fails by name, and a
// gate naming a benchmark absent from the run fails rather than silently
// un-gating.
func TestMaxWallGate(t *testing.T) {
	path := writeBaseline(t)
	// BenchmarkMC_EngineFixedN1Worker runs at 33094187 ns/op = 0.033s.
	var out strings.Builder
	if err := run([]string{"-against", path, "-max-wall", "BenchmarkMC_EngineFixedN1Worker=0.1"},
		strings.NewReader(sample), &out); err != nil {
		t.Errorf("0.033s wall failed a 0.1s ceiling: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "wall 0.033s (ceiling 0.100s) ok") {
		t.Errorf("check output lacks the wall-gate line:\n%s", out.String())
	}
	err := run([]string{"-against", path, "-max-wall", "BenchmarkMC_EngineFixedN1Worker=0.01"},
		strings.NewReader(sample), &strings.Builder{})
	if err == nil {
		t.Fatal("0.033s wall passed a 0.01s ceiling")
	}
	if !strings.Contains(err.Error(), "BenchmarkMC_EngineFixedN1Worker") {
		t.Errorf("failure does not name the benchmark: %v", err)
	}
	err = run([]string{"-against", path, "-max-wall", "BenchmarkGone=1.0"},
		strings.NewReader(sample), &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "not in the run") {
		t.Errorf("a gate on a missing benchmark must fail, got: %v", err)
	}
	for _, bad := range []string{"NoEquals", "=1.0", "Bench=abc", "Bench=0"} {
		if err := run([]string{"-against", path, "-max-wall", bad},
			strings.NewReader(sample), &strings.Builder{}); err == nil {
			t.Errorf("malformed -max-wall %q accepted", bad)
		}
	}
}

func TestCheckFailsWhenNothingMatches(t *testing.T) {
	path := writeBaseline(t)
	foreign := "BenchmarkOther \t 10\t 5 ns/op\t 1 B/op\t 1 allocs/op\n"
	if err := run([]string{"-against", path}, strings.NewReader(foreign), &strings.Builder{}); err == nil {
		t.Error("a run matching no baseline entry should fail the check")
	}
}

func TestMergeBaselines(t *testing.T) {
	a := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkMC_PathReused", AllocsPerOp: 49, NsPerOp: 16233},
		{Name: "BenchmarkMC_EngineFixedN1Worker", AllocsPerOp: 100913, PathsPerSec: 61884},
	}}
	b := File{Benchmarks: []Benchmark{
		{Name: "BenchmarkSolve_FiguresGenerate", AllocsPerOp: 1753227, NsPerOp: 2.5e9},
		// Collision: the later file must win.
		{Name: "BenchmarkMC_PathReused", AllocsPerOp: 1, NsPerOp: 2145},
	}}
	merged := mergeBaselines([]File{a, b})
	if len(merged) != 3 {
		t.Fatalf("merged %d entries, want 3", len(merged))
	}
	if got := merged["BenchmarkMC_PathReused"].AllocsPerOp; got != 1 {
		t.Errorf("collision: later baseline did not win (allocs/op = %v, want 1)", got)
	}
	if merged["BenchmarkSolve_FiguresGenerate"].NsPerOp != 2.5e9 {
		t.Error("solve baseline entry lost in merge")
	}
	if merged["BenchmarkMC_EngineFixedN1Worker"].PathsPerSec != 61884 {
		t.Error("paths/s metric lost in merge")
	}
}

// solveSample is a second suite's bench output, for multi-baseline checks.
const solveSample = `BenchmarkSolve_FiguresGenerate 	       1	2539602623 ns/op	44288392 B/op	 1753227 allocs/op
PASS
`

func TestCheckAgainstMultipleBaselines(t *testing.T) {
	dir := t.TempDir()
	mcPath := filepath.Join(dir, "BENCH_mc.json")
	solvePath := filepath.Join(dir, "BENCH_solve.json")
	if err := run([]string{"-o", mcPath}, strings.NewReader(sample), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-o", solvePath, "-note", "solve baseline"}, strings.NewReader(solveSample), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	// A combined run must match entries from both baselines and report the
	// delta columns in one table.
	combined := sample + solveSample
	var out strings.Builder
	if err := run([]string{"-against", mcPath + "," + solvePath}, strings.NewReader(combined), &out); err != nil {
		t.Fatalf("combined check failed: %v\n%s", err, out.String())
	}
	for _, want := range []string{"BenchmarkMC_PathReused", "BenchmarkSolve_FiguresGenerate", "paths/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("combined table lacks %q:\n%s", want, out.String())
		}
	}
	// The solve note must land in the artifact.
	raw, err := os.ReadFile(solvePath)
	if err != nil {
		t.Fatal(err)
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		t.Fatal(err)
	}
	if f.Note != "solve baseline" {
		t.Errorf("note = %q", f.Note)
	}
}
