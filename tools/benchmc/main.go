// Command benchmc turns `go test -bench` output into the machine-readable
// benchmark artifacts BENCH_mc.json / BENCH_solve.json, and gates CI
// against allocation regressions.
//
// Writing a baseline (see `make bench-json`):
//
//	go test -bench='^BenchmarkMC_' -benchmem -run='^$' . | go run ./tools/benchmc -o BENCH_mc.json
//	go test -bench='^BenchmarkSolve_' -benchmem -run='^$' . | go run ./tools/benchmc -o BENCH_solve.json \
//	  -note "solve-engine baseline"
//
// Checking a run against one or more committed baselines (see `make
// bench-check`, run by CI's bench-regression jobs). -against accepts a
// comma-separated list; the baselines are merged by benchmark name (later
// files override earlier ones on collision), so the MC and solve suites
// report in one table:
//
//	go test -bench='^Benchmark(MC|Solve)_' -benchmem -benchtime=32x -run='^$' . |
//	  go run ./tools/benchmc -against BENCH_mc.json,BENCH_solve.json -max-alloc-ratio 2
//
// The check fails (exit 1) when any benchmark present in both the run and
// a baseline reports more than max-alloc-ratio times the baseline's
// allocs/op — the guardrail that keeps the reused-state paths from
// silently regressing to per-path/per-cell allocation. With
// -max-paths-ratio it also fails when a convergence benchmark's
// pathsratio metric (paths-to-precision relative to the pseudo sampler,
// deterministic per seed) exceeds the given absolute ceiling — the
// guardrail on the variance-reduced sampling modes. With -max-wall
// ("Name=seconds,...") it gates named benchmarks on absolute wall time per
// op — the end-to-end full-figures ceiling (`make bench-check` pins
// BenchmarkFiguresFull at 1.0s), the one deliberate exception to the
// no-wall-gating rule because its headroom is wide. The table also
// reports the ns/op and paths/s deltas against the baseline for the
// operator's eyes; wall-clock is hardware-dependent, so those columns are
// deliberately not gated.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark function name, with any -GOMAXPROCS suffix
	// stripped.
	Name string `json:"name"`
	// Iterations is the b.N the reported values were averaged over.
	Iterations int `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the standard -benchmem
	// metrics.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// PathsPerSec is the engine benchmarks' custom throughput metric.
	PathsPerSec float64 `json:"paths_per_sec,omitempty"`
	// EffPathsPerSec is the convergence benchmarks' precision-normalized
	// throughput: pseudo-equivalent paths per second at the shared
	// half-width target.
	EffPathsPerSec float64 `json:"effpaths_per_sec,omitempty"`
	// PathsRatio is a convergence benchmark's paths-to-target divided by
	// the pseudo sampler's — deterministic per seed, so gateable.
	PathsRatio float64 `json:"paths_ratio,omitempty"`
	// Groups is the artifact-group count of the full-figures benchmark:
	// the work covered by its gated wall time.
	Groups float64 `json:"groups,omitempty"`
}

// File is the BENCH_mc.json schema.
type File struct {
	// Note says how to regenerate the artifact.
	Note string `json:"note"`
	// Benchmarks lists the parsed results in output order.
	Benchmarks []Benchmark `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-\d+$`)

// parse extracts benchmark lines ("BenchmarkX  N  v unit  v unit ...")
// from go test -bench output.
func parse(r io.Reader) ([]Benchmark, error) {
	var out []Benchmark
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		b := Benchmark{Name: procSuffix.ReplaceAllString(fields[0], ""), Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchmc: %q: bad value %q", b.Name, fields[i])
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = v
			case "allocs/op":
				b.AllocsPerOp = v
			case "paths/s":
				b.PathsPerSec = v
			case "effpaths/s":
				b.EffPathsPerSec = v
			case "pathsratio":
				b.PathsRatio = v
			case "groups":
				b.Groups = v
			}
		}
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("benchmc: reading input: %w", err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchmc: no benchmark lines in input (did the bench run fail?)")
	}
	return out, nil
}

// mergeBaselines unions the benchmark maps of several baseline files, in
// order: on a name collision the later file wins (so a more specific
// baseline can override a broader one). The returned map is keyed by
// benchmark name.
func mergeBaselines(files []File) map[string]Benchmark {
	merged := make(map[string]Benchmark)
	for _, f := range files {
		for _, b := range f.Benchmarks {
			merged[b.Name] = b
		}
	}
	return merged
}

// delta formats a percentage change against a baseline value, or "-" when
// the metric is absent on either side.
func delta(cur, ref float64) string {
	if cur == 0 || ref == 0 {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", (cur/ref-1)*100)
}

// parseMaxWall parses the -max-wall value: comma-separated Name=seconds
// pairs, each an absolute wall-time ceiling on that benchmark's ns/op.
func parseMaxWall(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	gates := make(map[string]float64)
	for _, pair := range strings.Split(spec, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, val, ok := strings.Cut(pair, "=")
		secs, err := strconv.ParseFloat(val, 64)
		if !ok || name == "" || err != nil || secs <= 0 {
			return nil, fmt.Errorf("benchmc: -max-wall %q: want Name=seconds with seconds > 0", pair)
		}
		gates[name] = secs
	}
	return gates, nil
}

// check compares a run against the merged baselines: allocs/op is gated at
// maxRatio, pathsratio (when reported and maxPathsRatio > 0) at its
// absolute ceiling, ns/op and paths/s are reported as informational
// deltas. The pathsratio gate is absolute, not relative to the baseline:
// the adaptive stop is deterministic per seed, so a variance-reduced mode
// drifting past its documented convergence bound is a correctness
// regression, not measurement noise. maxWall gates named benchmarks on
// absolute seconds per op — the only place wall-clock is gated, reserved
// for end-to-end ceilings with wide headroom (a missing gated benchmark
// fails, so a rename cannot silently drop the gate).
func check(current []Benchmark, base map[string]Benchmark, maxRatio, maxPathsRatio float64, maxWall map[string]float64, out io.Writer) error {
	matched := 0
	var allocFailures, pathsFailures []string
	fmt.Fprintf(out, "%-40s %21s %8s %9s %9s %7s %s\n",
		"benchmark", "allocs/op (vs base)", "ratio", "ns/op Δ", "paths/s Δ", "paths×", "gate")
	for _, cur := range current {
		ref, ok := base[cur.Name]
		if !ok || ref.AllocsPerOp <= 0 {
			continue
		}
		matched++
		ratio := cur.AllocsPerOp / ref.AllocsPerOp
		status := "ok"
		if ratio > maxRatio {
			status = "FAIL"
			allocFailures = append(allocFailures, cur.Name)
		}
		pathsCol := "-"
		if cur.PathsRatio > 0 {
			pathsCol = fmt.Sprintf("%.3f", cur.PathsRatio)
			if maxPathsRatio > 0 && cur.PathsRatio > maxPathsRatio {
				status = "FAIL"
				pathsFailures = append(pathsFailures, cur.Name)
			}
		}
		fmt.Fprintf(out, "%-40s %10.0f %10.0f %7.2fx %9s %9s %7s %s\n",
			cur.Name, cur.AllocsPerOp, ref.AllocsPerOp, ratio,
			delta(cur.NsPerOp, ref.NsPerOp), delta(cur.PathsPerSec, ref.PathsPerSec), pathsCol, status)
	}
	if matched == 0 {
		return fmt.Errorf("benchmc: no benchmark matched the baselines — regenerate with `make bench-json`")
	}
	var wallFailures []string
	for name, secs := range maxWall {
		found := false
		for _, cur := range current {
			if cur.Name != name {
				continue
			}
			found = true
			wall := cur.NsPerOp / 1e9
			status := "ok"
			if wall > secs {
				status = "FAIL"
				wallFailures = append(wallFailures, fmt.Sprintf("%s (%.3fs > %.3fs)", name, wall, secs))
			}
			fmt.Fprintf(out, "%-40s wall %.3fs (ceiling %.3fs) %s\n", name, wall, secs, status)
		}
		if !found {
			wallFailures = append(wallFailures, fmt.Sprintf("%s (not in the run)", name))
		}
	}
	sort.Strings(wallFailures)
	var errs []string
	if len(allocFailures) > 0 {
		errs = append(errs, fmt.Sprintf("allocs/op regressed >%.1fx on: %s", maxRatio, strings.Join(allocFailures, ", ")))
	}
	if len(pathsFailures) > 0 {
		errs = append(errs, fmt.Sprintf("paths-to-precision ratio exceeded %.2fx pseudo on: %s", maxPathsRatio, strings.Join(pathsFailures, ", ")))
	}
	if len(wallFailures) > 0 {
		errs = append(errs, fmt.Sprintf("wall-time ceiling exceeded on: %s", strings.Join(wallFailures, ", ")))
	}
	if len(errs) > 0 {
		return fmt.Errorf("benchmc: %s", strings.Join(errs, "; "))
	}
	return nil
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchmc", flag.ContinueOnError)
	var (
		outPath  = fs.String("o", "", "write parsed results as JSON to this path (default: stdout)")
		against  = fs.String("against", "", "comma-separated baseline files to check allocs/op against instead of writing JSON")
		maxRatio = fs.Float64("max-alloc-ratio", 2, "with -against: fail when allocs/op exceeds baseline by this factor")
		maxPaths = fs.Float64("max-paths-ratio", 0, "with -against: fail when a convergence benchmark's pathsratio exceeds this absolute ceiling (0 = no gate)")
		maxWall  = fs.String("max-wall", "", "with -against: comma-separated Name=seconds pairs; fail when that benchmark's wall time per op exceeds the ceiling (or it is missing from the run)")
		note     = fs.String("note", "Monte Carlo engine benchmark baseline; regenerate with `make bench-json`, CI gates allocs/op at 2x via `make bench-check`.",
			"with -o: the note field written into the JSON artifact")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	benches, err := parse(stdin)
	if err != nil {
		return err
	}
	if *against != "" {
		wallGates, err := parseMaxWall(*maxWall)
		if err != nil {
			return err
		}
		var files []File
		for _, path := range strings.Split(*against, ",") {
			path = strings.TrimSpace(path)
			raw, err := os.ReadFile(path)
			if err != nil {
				return fmt.Errorf("benchmc: %w", err)
			}
			var baseline File
			if err := json.Unmarshal(raw, &baseline); err != nil {
				return fmt.Errorf("benchmc: parsing %s: %w", path, err)
			}
			files = append(files, baseline)
		}
		return check(benches, mergeBaselines(files), *maxRatio, *maxPaths, wallGates, stdout)
	}
	f := File{
		Note:       *note,
		Benchmarks: benches,
	}
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return fmt.Errorf("benchmc: %w", err)
	}
	data = append(data, '\n')
	if *outPath == "" {
		_, err = stdout.Write(data)
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return fmt.Errorf("benchmc: %w", err)
	}
	fmt.Fprintf(stdout, "wrote %d benchmarks to %s\n", len(benches), *outPath)
	return nil
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchmc:", err)
		os.Exit(1)
	}
}
