package main

import "testing"

// TestPercentileNearestRank pins the nearest-rank definition: the
// q-quantile of n sorted values is the ceil(q*n)-th smallest (1-based).
// The regression this guards: truncating q*n instead of ceiling it read
// one rank low for every fractional q*n, understating tail latency.
func TestPercentileNearestRank(t *testing.T) {
	tests := []struct {
		name   string
		sorted []float64
		q      float64
		want   float64
	}{
		{"empty", nil, 0.99, 0},
		{"n=1 p50", []float64{7}, 0.50, 7},
		{"n=1 p99", []float64{7}, 0.99, 7},
		{"n=1 max", []float64{7}, 1, 7},
		{"n=2 p50", []float64{1, 2}, 0.50, 1}, // ceil(1.0) = rank 1
		{"n=2 p90", []float64{1, 2}, 0.90, 2}, // ceil(1.8) = rank 2
		{"n=2 max", []float64{1, 2}, 1, 2},
		{"n=3 p50", []float64{1, 2, 3}, 0.50, 2}, // ceil(1.5) = rank 2
		{"n=3 p90", []float64{1, 2, 3}, 0.90, 3}, // ceil(2.7) = rank 3
		{"n=3 max", []float64{1, 2, 3}, 1, 3},
		{"q=0 clamps to min", []float64{1, 2, 3}, 0, 1},
		// Exact rank: q*n integral reads exactly that rank, no off-by-one.
		{"n=10 p50 exact", seq(10), 0.50, 5},
		{"n=10 p90 exact", seq(10), 0.90, 9},
		{"n=100 p99 exact", seq(100), 0.99, 99},
		// Fractional rank: the old truncating index read one rank low here.
		{"n=10 p99 rounds up", seq(10), 0.99, 10},    // ceil(9.9) = 10, not 9
		{"n=150 p99 rounds up", seq(150), 0.99, 149}, // ceil(148.5) = 149, not 148
		{"n=3 p99 rounds up", []float64{1, 2, 3}, 0.99, 3},
		{"q=1 is the max", seq(1000), 1, 1000},
	}
	for _, tc := range tests {
		if got := percentile(tc.sorted, tc.q); got != tc.want {
			t.Errorf("%s: percentile(n=%d, q=%v) = %v, want %v",
				tc.name, len(tc.sorted), tc.q, got, tc.want)
		}
	}
}

// seq returns [1, 2, ..., n] so value k sits at rank k.
func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i + 1)
	}
	return out
}
