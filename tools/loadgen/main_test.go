package main

import (
	"encoding/json"
	"reflect"
	"testing"
)

func TestParseMix(t *testing.T) {
	got, err := parseMix("tableIII:2,high-vol")
	if err != nil {
		t.Fatalf("parseMix: %v", err)
	}
	want := []string{"tableIII", "tableIII", "high-vol"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("parseMix = %v, want %v", got, want)
	}
	for _, bad := range []string{"", "no-such-preset", "tableIII:0", "tableIII:x"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

func TestPercentile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		q    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}} // p99 of 10: rank ceil(9.9) = 10
	for _, tc := range cases {
		if got := percentile(sorted, tc.q); got != tc.want {
			t.Errorf("percentile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile(nil) = %v, want 0", got)
	}
}

func TestKeyedBodyStableAndDistinct(t *testing.T) {
	cfg := genConfig{weights: []string{"tableIII", "high-vol"}, mcRuns: 500}
	// Same key, different envelope ids: params must be byte-identical
	// (the server's solve key hashes params alone).
	a, b := keyedBody(cfg, 1, 3), keyedBody(cfg, 2, 3)
	paramsOf := func(body []byte) string {
		var env struct {
			Params json.RawMessage `json:"params"`
		}
		if err := json.Unmarshal(body, &env); err != nil {
			t.Fatalf("unmarshal %s: %v", body, err)
		}
		return string(env.Params)
	}
	if paramsOf(a) != paramsOf(b) {
		t.Error("same key produced different params")
	}
	// Distinct keys must differ, including a hot slot vs the cold key
	// sharing its low bits.
	if paramsOf(keyedBody(cfg, 1, 0)) == paramsOf(keyedBody(cfg, 1, coldKeyBase)) {
		t.Error("hot slot 0 collides with cold key 0")
	}
	if paramsOf(keyedBody(cfg, 1, 4)) == paramsOf(keyedBody(cfg, 1, 5)) {
		t.Error("adjacent keys collide")
	}
}
