package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// shedThenServe fakes a swapd that sheds the first n requests with
// -32005 (carrying a retryAfterMs hint) and then answers.
func shedThenServe(n int32) (*httptest.Server, *atomic.Int32) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c := calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		if c <= n {
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"jsonrpc":"2.0","id":1,"error":{"code":-32005,"message":"overloaded","data":{"retryAfterMs":1}}}`)
			return
		}
		io.WriteString(w, `{"jsonrpc":"2.0","id":1,"result":{"scenario":"tableIII","variants":[],"coalesced":false,"elapsedUs":42}}`)
	}))
	return ts, &calls
}

// TestSendRetriesShedThenSucceeds checks the chaos retry loop: a shed
// response is retried (honoring retryAfterMs) until the server admits
// the request, and the outcome records the retries.
func TestSendRetriesShedThenSucceeds(t *testing.T) {
	ts, calls := shedThenServe(2)
	defer ts.Close()
	cfg := genConfig{seed: 7, chaos: true, wantDigests: true}
	out := send(http.DefaultClient, ts.URL, job{id: 3, body: []byte(`{}`)}, cfg)
	if !out.success() {
		t.Fatalf("outcome = %+v, want success after retries", out)
	}
	if out.retries != 2 || out.attempts != 3 {
		t.Errorf("retries/attempts = %d/%d, want 2/3", out.retries, out.attempts)
	}
	if calls.Load() != 3 {
		t.Errorf("server saw %d calls, want 3", calls.Load())
	}
	if out.result == nil {
		t.Error("successful outcome carries no result payload for digesting")
	}
}

// TestSendShedWithoutChaos checks the default mode takes the shed at
// face value: one attempt, classified as shed, no retry.
func TestSendShedWithoutChaos(t *testing.T) {
	ts, calls := shedThenServe(100)
	defer ts.Close()
	out := send(http.DefaultClient, ts.URL, job{id: 1, body: []byte(`{}`)}, genConfig{seed: 1})
	if !out.shed || out.rpcErr || out.transportErr {
		t.Fatalf("outcome = %+v, want shed", out)
	}
	if out.attempts != 1 || calls.Load() != 1 {
		t.Errorf("attempts = %d (server saw %d), want exactly 1", out.attempts, calls.Load())
	}
}

// TestSendChaosGivesUp checks the retry budget is bounded: a server that
// always sheds costs at most the attempt cap, and the terminal outcome
// is still a shed.
func TestSendChaosGivesUp(t *testing.T) {
	ts, calls := shedThenServe(1 << 30)
	defer ts.Close()
	start := time.Now()
	out := send(http.DefaultClient, ts.URL, job{id: 2, body: []byte(`{}`)}, genConfig{seed: 1, chaos: true})
	if !out.shed {
		t.Fatalf("outcome = %+v, want terminal shed", out)
	}
	if out.attempts != 6 || calls.Load() != 6 {
		t.Errorf("attempts = %d (server saw %d), want the cap of 6", out.attempts, calls.Load())
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("retry loop took %v, want bounded backoff", elapsed)
	}
}

// TestSendNoRetryOnClientError checks chaos mode does not retry
// non-retryable RPC errors (a bad request stays bad).
func TestSendNoRetryOnClientError(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		io.WriteString(w, `{"jsonrpc":"2.0","id":1,"error":{"code":-32602,"message":"bad params"}}`)
	}))
	defer ts.Close()
	out := send(http.DefaultClient, ts.URL, job{id: 1, body: []byte(`{}`)}, genConfig{seed: 1, chaos: true})
	if !out.rpcErr {
		t.Fatalf("outcome = %+v, want rpc error", out)
	}
	if calls.Load() != 1 {
		t.Errorf("server saw %d calls, want 1 (no retry on -32602)", calls.Load())
	}
}

// TestDigestCanonicalization checks the digest ignores the volatile
// fields and JSON key order, and catches a real value change.
func TestDigestCanonicalization(t *testing.T) {
	a, err := digestResult([]byte(`{"scenario":"x","variants":[{"sr":0.5}],"coalesced":false,"elapsedUs":42}`))
	if err != nil {
		t.Fatalf("digestResult: %v", err)
	}
	b, err := digestResult([]byte(`{"elapsedUs":99999,"coalesced":true,"variants":[{"sr":0.5}],"scenario":"x"}`))
	if err != nil {
		t.Fatalf("digestResult: %v", err)
	}
	if a != b {
		t.Errorf("digests differ across volatile fields/key order:\n  %s\n  %s", a, b)
	}
	c, err := digestResult([]byte(`{"scenario":"x","variants":[{"sr":0.6}],"coalesced":false,"elapsedUs":42}`))
	if err != nil {
		t.Fatalf("digestResult: %v", err)
	}
	if a == c {
		t.Error("digest missed a changed solve value")
	}
}

// TestCompareDigests walks the digest gate: identical shared results
// pass, a changed result fails, an empty intersection fails.
func TestCompareDigests(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "digest.json")
	if err := writeDigests(path, map[int]string{1: "aa", 2: "bb"}); err != nil {
		t.Fatalf("writeDigests: %v", err)
	}
	var out strings.Builder
	if err := compareDigests(&out, path, map[int]string{1: "aa", 3: "cc"}); err != nil {
		t.Errorf("matching digests failed: %v", err)
	}
	if err := compareDigests(io.Discard, path, map[int]string{1: "XX"}); err == nil {
		t.Error("mismatched digest passed")
	}
	if err := compareDigests(io.Discard, path, map[int]string{9: "zz"}); err == nil {
		t.Error("empty intersection passed")
	}
	if err := compareDigests(io.Discard, filepath.Join(dir, "missing.json"), map[int]string{1: "aa"}); err == nil {
		t.Error("missing baseline passed")
	}
}

// TestDigestFileRoundTrip checks the on-disk schema.
func TestDigestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.json")
	if err := writeDigests(path, map[int]string{7: "abc"}); err != nil {
		t.Fatalf("writeDigests: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	var f digestFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if f.Digests["7"] != "abc" {
		t.Errorf("digests = %v, want 7->abc", f.Digests)
	}
}

// TestSendTransportError checks a dead endpoint is classified as a
// transport error, not an RPC one.
func TestSendTransportError(t *testing.T) {
	out := send(&http.Client{Timeout: time.Second}, "http://127.0.0.1:1", job{id: 1, body: []byte(`{}`)}, genConfig{seed: 1})
	if !out.transportErr {
		t.Fatalf("outcome = %+v, want transport error", out)
	}
}
