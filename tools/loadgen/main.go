// Command loadgen drives cmd/swapd with a paced, seeded request stream
// and emits a BENCH_rpc.json-style artifact: sustained QPS, latency
// percentiles, and the single-flight coalescing hit rate. It is the RPC
// layer's regression gate (`make bench-rpc-json` writes the baseline,
// `make bench-check` and CI's swapd-smoke job replay it with gates).
//
// Usage:
//
//	loadgen -spawn ./bin/swapd -duration 10s -qps 1200 -o BENCH_rpc.json
//	loadgen -addr http://127.0.0.1:8547 -duration 5s -qps 800 \
//	  -against BENCH_rpc.json -min-qps 600 -max-p99-ms 80 -require-coalesce
//
// The stream mixes cheap cached solves across a weighted preset mix with
// periodic bursts of identical Monte Carlo solves (every -dup-every
// dispatches, -dup-burst concurrent copies with a fresh per-burst seed),
// so the single-flight layer always sees coalesceable load: within one
// burst exactly one request computes and the rest ride along with
// coalesced=true. Everything is seeded; two runs with the same flags
// issue the same request sequence.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// Report is the BENCH_rpc.json schema.
type Report struct {
	// Note says how to regenerate the artifact.
	Note string `json:"note"`
	// Config echoes the generator settings the numbers were measured under.
	Config struct {
		QPS       int     `json:"qps"`
		DurationS float64 `json:"duration_s"`
		Seed      int64   `json:"seed"`
		Mix       string  `json:"mix"`
		DupEvery  int     `json:"dup_every"`
		DupBurst  int     `json:"dup_burst"`
		MCRuns    int     `json:"mc_runs"`
	} `json:"config"`
	// Results are the measured aggregates.
	Results struct {
		Requests     int     `json:"requests"`
		Errors       int     `json:"errors"`
		SustainedQPS float64 `json:"sustained_qps"`
		P50Us        float64 `json:"p50_us"`
		P90Us        float64 `json:"p90_us"`
		P99Us        float64 `json:"p99_us"`
		MaxUs        float64 `json:"max_us"`
		// Coalesced counts responses served from another request's
		// in-flight computation; HitRate is the server's waiters /
		// (leaders + waiters) over the whole run.
		Coalesced int     `json:"coalesced"`
		HitRate   float64 `json:"coalesce_hit_rate"`
	} `json:"results"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "", "swapd base URL (e.g. http://127.0.0.1:8547); empty requires -spawn")
		spawn    = fs.String("spawn", "", "path to a swapd binary to spawn on a free port for the run")
		duration = fs.Duration("duration", 10*time.Second, "how long to generate load")
		qps      = fs.Int("qps", 1200, "target request rate")
		seed     = fs.Int64("seed", 1, "RNG seed for the request sequence")
		mix      = fs.String("mix", "tableIII:4,high-vol:2,low-vol:2,fee-stress:1,deep-collateral:1",
			"weighted preset mix (name:weight,...)")
		dupEvery = fs.Int("dup-every", 100, "dispatch a coalesceable burst every N requests (0 disables)")
		dupBurst = fs.Int("dup-burst", 4, "identical concurrent requests per burst")
		mcRuns   = fs.Int("mc-runs", 2000, "Monte Carlo runs of each burst request (the coalesceable work)")
		workers  = fs.Int("workers", 32, "sender goroutines")
		output   = fs.String("o", "", "write the JSON report here ('-' or empty = stdout only)")
		note     = fs.String("note", "regenerate with `make bench-rpc-json`", "note field of the report")
		against  = fs.String("against", "", "baseline BENCH_rpc.json to report deltas against")

		minQPS          = fs.Float64("min-qps", 0, "fail unless sustained QPS >= this (0 = no gate)")
		maxP99Ms        = fs.Float64("max-p99-ms", 0, "fail unless p99 latency <= this (0 = no gate)")
		requireCoalesce = fs.Bool("require-coalesce", false, "fail unless the coalescing hit rate is > 0")
		maxErrorRate    = fs.Float64("max-error-rate", 0.01, "fail when errors/requests exceeds this")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	if *qps <= 0 || *duration <= 0 || *workers <= 0 {
		return fmt.Errorf("qps, duration and workers must be > 0")
	}

	base := *addr
	if *spawn != "" {
		stop, url, err := spawnSwapd(*spawn)
		if err != nil {
			return err
		}
		defer stop()
		base = url
	}
	if base == "" {
		return fmt.Errorf("need -addr or -spawn")
	}
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	rep := generate(base, genConfig{
		qps: *qps, duration: *duration, seed: *seed, weights: weights,
		dupEvery: *dupEvery, dupBurst: *dupBurst, mcRuns: *mcRuns, workers: *workers,
	})
	rep.Note = *note
	rep.Config.QPS = *qps
	rep.Config.DurationS = duration.Seconds()
	rep.Config.Seed = *seed
	rep.Config.Mix = *mix
	rep.Config.DupEvery = *dupEvery
	rep.Config.DupBurst = *dupBurst
	rep.Config.MCRuns = *mcRuns

	printReport(out, rep)
	if *against != "" {
		if err := printDeltas(out, rep, *against); err != nil {
			return err
		}
	}
	if *output != "" && *output != "-" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*output, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *output)
	}

	r := rep.Results
	var failures []string
	if frac := errorRate(r.Errors, r.Requests); frac > *maxErrorRate {
		failures = append(failures, fmt.Sprintf("error rate %.2f%% > %.2f%%", frac*100, *maxErrorRate*100))
	}
	if r.Requests == 0 {
		failures = append(failures, "no requests completed")
	}
	if *minQPS > 0 && r.SustainedQPS < *minQPS {
		failures = append(failures, fmt.Sprintf("sustained %.0f QPS < required %.0f", r.SustainedQPS, *minQPS))
	}
	if *maxP99Ms > 0 && r.P99Us > *maxP99Ms*1000 {
		failures = append(failures, fmt.Sprintf("p99 %.2fms > allowed %.2fms", r.P99Us/1000, *maxP99Ms))
	}
	if *requireCoalesce && r.HitRate <= 0 {
		failures = append(failures, "coalescing hit rate is 0")
	}
	if len(failures) > 0 {
		return fmt.Errorf("gates failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(out, "gates passed")
	return nil
}

func errorRate(errors, requests int) float64 {
	if requests == 0 {
		return 0
	}
	return float64(errors) / float64(requests)
}

// parseMix parses "name:weight,..." into an expanded weighted list.
func parseMix(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, ":")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w <= 0 {
				return nil, fmt.Errorf("mix entry %q: weight must be a positive integer", part)
			}
		}
		if _, err := scenario.Lookup(name); err != nil {
			return nil, fmt.Errorf("mix entry %q: %v", part, err)
		}
		for i := 0; i < w; i++ {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return out, nil
}

// spawnSwapd starts a swapd child on a free loopback port and returns a
// stop function plus the base URL.
func spawnSwapd(bin string) (func(), string, error) {
	port, err := freePort()
	if err != nil {
		return nil, "", err
	}
	hostport := fmt.Sprintf("127.0.0.1:%d", port)
	cmd := exec.Command(bin, "-addr", hostport)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("spawning %s: %w", bin, err)
	}
	stop := func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	}
	return stop, "http://" + hostport, nil
}

// freePort asks the kernel for an unused loopback port.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("swapd at %s not healthy after %v", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// genConfig parameterises one load run.
type genConfig struct {
	qps      int
	duration time.Duration
	seed     int64
	weights  []string
	dupEvery int
	dupBurst int
	mcRuns   int
	workers  int
}

// job is one dispatched request (burst jobs share a body).
type job struct {
	body []byte
}

// generate runs the paced stream and aggregates the measurements.
func generate(base string, cfg genConfig) Report {
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers * 2,
			MaxIdleConnsPerHost: cfg.workers * 2,
		},
		Timeout: 30 * time.Second,
	}

	var (
		mu        sync.Mutex
		latencies []float64
		errs      int
		coalesced int
	)
	record := func(us float64, coal bool, err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			errs++
			return
		}
		latencies = append(latencies, us)
		if coal {
			coalesced++
		}
	}

	jobs := make(chan job, cfg.workers*4)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				start := time.Now()
				coal, err := post(client, base, j.body)
				record(float64(time.Since(start).Microseconds()), coal, err)
			}
		}()
	}

	// Paced dispatch: each request has a target send time; the dispatcher
	// catches up after stalls instead of silently lagging the rate.
	rng := rand.New(rand.NewSource(cfg.seed))
	interval := time.Second / time.Duration(cfg.qps)
	start := time.Now()
	end := start.Add(cfg.duration)
	for i := 0; ; i++ {
		target := start.Add(time.Duration(i) * interval)
		if target.After(end) {
			break
		}
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		if cfg.dupEvery > 0 && i%cfg.dupEvery == 0 {
			body := burstBody(rng, cfg, i)
			for b := 0; b < cfg.dupBurst; b++ {
				jobs <- job{body: body}
			}
			continue
		}
		jobs <- job{body: solveBody(cfg.weights[rng.Intn(len(cfg.weights))], i)}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var rep Report
	sort.Float64s(latencies)
	rep.Results.Requests = len(latencies) + errs
	rep.Results.Errors = errs
	rep.Results.SustainedQPS = float64(len(latencies)) / elapsed.Seconds()
	rep.Results.P50Us = percentile(latencies, 0.50)
	rep.Results.P90Us = percentile(latencies, 0.90)
	rep.Results.P99Us = percentile(latencies, 0.99)
	rep.Results.MaxUs = percentile(latencies, 1)
	rep.Results.Coalesced = coalesced
	if hr, ok := fetchHitRate(client, base); ok {
		rep.Results.HitRate = hr
	} else if len(latencies) > 0 {
		rep.Results.HitRate = float64(coalesced) / float64(len(latencies))
	}
	return rep
}

// solveBody builds a cheap cached solve of a preset.
func solveBody(preset string, id int) []byte {
	return []byte(fmt.Sprintf(
		`{"jsonrpc":"2.0","id":%d,"method":"swap.solve","params":{"scenario":%q,"budgetMs":20000}}`,
		id, preset))
}

// burstBody builds one burst's shared request: an inline scenario with a
// fresh per-burst seed (so the flight key is new each burst) and a Monte
// Carlo validation expensive enough that the copies overlap in flight.
func burstBody(rng *rand.Rand, cfg genConfig, id int) []byte {
	sc, err := scenario.Lookup(cfg.weights[rng.Intn(len(cfg.weights))])
	if err != nil { // mix is pre-validated; defensive only
		panic(err)
	}
	sc.Seed = rng.Int63()
	sc.MCRuns = cfg.mcRuns
	sc.Variants = []string{"basic"}
	inline, err := json.Marshal(sc)
	if err != nil {
		panic(err)
	}
	return []byte(fmt.Sprintf(
		`{"jsonrpc":"2.0","id":%d,"method":"swap.solve","params":{"scenario":%s,"mc":true,"budgetMs":20000}}`,
		id, inline))
}

// post sends one request and reports whether the response was coalesced.
func post(client *http.Client, base string, body []byte) (coalesced bool, err error) {
	resp, err := client.Post(base+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	var envelope struct {
		Result struct {
			Coalesced bool `json:"coalesced"`
		} `json:"result"`
		Error *struct {
			Code    int    `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return false, err
	}
	if envelope.Error != nil {
		return false, fmt.Errorf("rpc %d: %s", envelope.Error.Code, envelope.Error.Message)
	}
	return envelope.Result.Coalesced, nil
}

// fetchHitRate reads the server's own coalescing counters.
func fetchHitRate(client *http.Client, base string) (float64, bool) {
	body := []byte(`{"jsonrpc":"2.0","id":"stats","method":"swapd.stats"}`)
	resp, err := client.Post(base+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, false
	}
	defer resp.Body.Close()
	var envelope struct {
		Result struct {
			Coalescing struct {
				HitRate float64 `json:"hitRate"`
			} `json:"coalescing"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return 0, false
	}
	return envelope.Result.Coalescing.HitRate, true
}

// percentile reads the q-quantile from sorted data by the nearest-rank
// method: rank ceil(q*n), 1-based. Truncating q*n instead of taking the
// ceiling reads one rank low whenever q*n is fractional — a bias that
// understates tail latency (p99 of 150 samples must be the 149th value,
// not the 148th).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// printReport renders the human-readable summary.
func printReport(out io.Writer, rep Report) {
	r := rep.Results
	fmt.Fprintf(out, "loadgen: %d requests (%d errors), sustained %.0f QPS\n",
		r.Requests, r.Errors, r.SustainedQPS)
	fmt.Fprintf(out, "latency: p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		r.P50Us/1000, r.P90Us/1000, r.P99Us/1000, r.MaxUs/1000)
	fmt.Fprintf(out, "coalescing: %d coalesced responses, server hit rate %.1f%%\n",
		r.Coalesced, r.HitRate*100)
}

// printDeltas reports the run against a committed baseline (informational:
// wall-clock metrics are hardware-dependent, so the hard gates are the
// absolute -min-qps/-max-p99-ms flags).
func printDeltas(out io.Writer, rep Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	fmt.Fprintf(out, "vs %s: qps %+.1f%%  p99 %+.1f%%  hit rate %.1f%% -> %.1f%%\n",
		path,
		ratioDelta(rep.Results.SustainedQPS, base.Results.SustainedQPS),
		ratioDelta(rep.Results.P99Us, base.Results.P99Us),
		base.Results.HitRate*100, rep.Results.HitRate*100)
	return nil
}

// ratioDelta is the percentage change of cur against base.
func ratioDelta(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}
