// Command loadgen drives cmd/swapd with a paced, seeded request stream
// and emits a BENCH_rpc.json-style artifact: sustained QPS, latency
// percentiles, the single-flight coalescing hit rate, and an error
// taxonomy (shed / RPC / transport). It is the RPC layer's regression
// gate (`make bench-rpc-json` writes the baseline, `make bench-check`
// and CI's swapd-smoke job replay it with gates) and, with -chaos, the
// chaos harness's client (`make chaos-smoke`).
//
// Usage:
//
//	loadgen -spawn ./bin/swapd -duration 10s -qps 1200 -o BENCH_rpc.json
//	loadgen -addr http://127.0.0.1:8547 -duration 5s -qps 800 \
//	  -against BENCH_rpc.json -min-qps 600 -max-p99-ms 80 -require-coalesce
//	loadgen -spawn ./bin/swapd -spawn-args "-fault rpc.error=0.05 -fault-seed 42" \
//	  -chaos -duration 6s -require-shed -min-goodput 50 -digest-against d.json
//	loadgen -spawn ./bin/swapd -hot-frac 0.6 -hot-keys 8 -warm \
//	  -duration 5s -qps 400 -min-warm-hit 0.5 -warm-faster
//
// The stream mixes cheap cached solves across a weighted preset mix with
// periodic bursts of identical Monte Carlo solves (every -dup-every
// dispatches, -dup-burst concurrent copies with a fresh per-burst seed),
// so the single-flight layer always sees coalesceable load: within one
// burst exactly one request computes and the rest ride along with
// coalesced=true. Everything is seeded; two runs with the same flags
// issue the same request sequence — which is what the digest flags
// exploit: -digest-out records a canonical hash of every successful
// result by request index, and -digest-against fails the run if any
// request that succeeded in both runs solved to different bytes (the
// chaos harness's correctness gate: faults may shed or delay requests,
// never corrupt them).
//
// In -chaos mode, shed (-32005), internal (-32603) and transport errors
// are retried with jittered exponential backoff that honors the server's
// retryAfterMs hint; the report then carries goodput (successful QPS)
// and a retry histogram alongside the latency percentiles.
//
// -hot-frac switches the non-burst stream to a hot-key mix (that
// fraction of requests draws Zipf-style from -hot-keys stable keyed
// solves, the rest are unique per request) and -warm replays the
// byte-identical seeded stream a second time against the same daemon:
// the report grows a warm row with per-pass response-cache and
// solve-store hit deltas, gated by -min-warm-hit and -warm-faster —
// the cache tiers' regression checks.
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/scenario"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

// Report is the BENCH_rpc.json schema.
type Report struct {
	// Note says how to regenerate the artifact.
	Note string `json:"note"`
	// Config echoes the generator settings the numbers were measured under.
	Config struct {
		QPS       int     `json:"qps"`
		DurationS float64 `json:"duration_s"`
		Seed      int64   `json:"seed"`
		Mix       string  `json:"mix"`
		DupEvery  int     `json:"dup_every"`
		DupBurst  int     `json:"dup_burst"`
		MCRuns    int     `json:"mc_runs"`
		// Chaos records that the run retried retryable errors with
		// backoff (the chaos-smoke client mode).
		Chaos bool `json:"chaos,omitempty"`
		// HotFrac/HotKeys describe the hot-key mix: HotFrac of non-burst
		// requests draw Zipf-style from HotKeys distinct keyed solves, the
		// rest are unique per request (0 = the classic preset mix).
		HotFrac float64 `json:"hot_frac,omitempty"`
		HotKeys int     `json:"hot_keys,omitempty"`
		// WarmReplay records that the identical seeded stream ran twice
		// against the same daemon; the second pass is the warm row.
		WarmReplay bool `json:"warm_replay,omitempty"`
	} `json:"config"`
	// Results is the first (cold) pass; Warm, when -warm replayed the
	// stream, the second pass against the already-populated caches.
	Results Results  `json:"results"`
	Warm    *Results `json:"warm,omitempty"`
}

// Results are one pass's measured aggregates. Latency percentiles are
// over successful responses only; errors are tallied separately, by
// class.
type Results struct {
	Requests     int     `json:"requests"`
	Errors       int     `json:"errors"`
	SustainedQPS float64 `json:"sustained_qps"`
	P50Us        float64 `json:"p50_us"`
	P90Us        float64 `json:"p90_us"`
	P99Us        float64 `json:"p99_us"`
	MaxUs        float64 `json:"max_us"`
	// Coalesced counts responses served from another request's
	// in-flight computation; HitRate is the server's waiters /
	// (leaders + waiters) over the whole run.
	Coalesced int     `json:"coalesced"`
	HitRate   float64 `json:"coalesce_hit_rate"`
	// The error taxonomy: Shed counts requests that ended -32005
	// overloaded, RPCErrors other JSON-RPC errors, TransportErrors
	// requests that never produced a decodable response. The three
	// sum to Errors. All are terminal outcomes — in chaos mode, after
	// the retry budget.
	Shed            int `json:"shed"`
	RPCErrors       int `json:"rpc_errors"`
	TransportErrors int `json:"transport_errors"`
	// GoodputQPS is successful responses per second of wall clock —
	// the chaos harness's floor metric. Attempts counts every HTTP
	// round trip (retries included); Retries is attempts beyond each
	// request's first. RetryHistogram[k] counts requests that
	// succeeded after exactly k retries (omitted when no retries ran).
	GoodputQPS     float64 `json:"goodput_qps"`
	Attempts       int     `json:"attempts"`
	Retries        int     `json:"retries"`
	RetryHistogram []int   `json:"retry_histogram,omitempty"`
	// ServerShed and PanicsRecovered mirror swapd.stats at the end of
	// the run: the server-side shed tally (the -require-shed gate) and
	// the panics the daemon absorbed instead of crashing.
	ServerShed      uint64 `json:"server_shed"`
	PanicsRecovered uint64 `json:"panics_recovered"`
	// RespCacheHits and StoreHits are this pass's deltas of the server's
	// response-cache and solve-store hit counters (swapd.stats snapshots
	// bracketing the pass) — the warm-path gates read these.
	RespCacheHits uint64 `json:"resp_cache_hits"`
	StoreHits     uint64 `json:"store_hits"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "", "swapd base URL (e.g. http://127.0.0.1:8547); empty requires -spawn")
		spawn     = fs.String("spawn", "", "path to a swapd binary to spawn on a free port for the run")
		spawnArgs = fs.String("spawn-args", "", "extra arguments for the spawned swapd (space-separated)")
		duration  = fs.Duration("duration", 10*time.Second, "how long to generate load")
		qps       = fs.Int("qps", 1200, "target request rate")
		seed      = fs.Int64("seed", 1, "RNG seed for the request sequence")
		mix       = fs.String("mix", "tableIII:4,high-vol:2,low-vol:2,fee-stress:1,deep-collateral:1",
			"weighted preset mix (name:weight,...)")
		dupEvery = fs.Int("dup-every", 100, "dispatch a coalesceable burst every N requests (0 disables)")
		dupBurst = fs.Int("dup-burst", 4, "identical concurrent requests per burst")
		mcRuns   = fs.Int("mc-runs", 2000, "Monte Carlo runs of each burst request (the coalesceable work)")
		hotFrac  = fs.Float64("hot-frac", 0, "fraction of non-burst requests drawn Zipf-style from -hot-keys keyed solves; the rest get a unique key each (0 = classic preset mix)")
		hotKeys  = fs.Int("hot-keys", 8, "distinct hot keys behind -hot-frac")
		warm     = fs.Bool("warm", false, "replay the identical seeded stream a second time against the same daemon and report it as the warm row")
		workers  = fs.Int("workers", 32, "sender goroutines")
		chaos    = fs.Bool("chaos", false, "retry shed/internal/transport errors with jittered backoff honoring retryAfterMs")
		output   = fs.String("o", "", "write the JSON report here ('-' or empty = stdout only)")
		note     = fs.String("note", "regenerate with `make bench-rpc-json`", "note field of the report")
		against  = fs.String("against", "", "baseline BENCH_rpc.json to report deltas against")

		digestOut     = fs.String("digest-out", "", "write a result-digest file (request index -> canonical result hash)")
		digestAgainst = fs.String("digest-against", "", "digest file to compare against: shared successes must hash identically")

		minQPS          = fs.Float64("min-qps", 0, "fail unless sustained QPS >= this (0 = no gate)")
		maxP99Ms        = fs.Float64("max-p99-ms", 0, "fail unless p99 latency <= this (0 = no gate)")
		requireCoalesce = fs.Bool("require-coalesce", false, "fail unless the coalescing hit rate is > 0")
		maxErrorRate    = fs.Float64("max-error-rate", 0.01, "fail when errors/requests exceeds this")
		requireShed     = fs.Bool("require-shed", false, "fail unless the server shed at least one request (overload proof)")
		minGoodput      = fs.Float64("min-goodput", 0, "fail unless goodput (successful QPS) >= this (0 = no gate)")
		minWarmHit      = fs.Float64("min-warm-hit", 0, "fail unless the warm pass's resp-cache hits / requests >= this (needs -warm; 0 = no gate)")
		warmFaster      = fs.Bool("warm-faster", false, "fail unless the warm pass's p50 and p99 beat the cold pass (needs -warm)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	weights, err := parseMix(*mix)
	if err != nil {
		return err
	}
	if *qps <= 0 || *duration <= 0 || *workers <= 0 {
		return fmt.Errorf("qps, duration and workers must be > 0")
	}
	if *hotFrac < 0 || *hotFrac > 1 {
		return fmt.Errorf("-hot-frac %v out of [0,1]", *hotFrac)
	}
	if *hotFrac > 0 && *hotKeys < 1 {
		return fmt.Errorf("-hot-keys must be >= 1 with -hot-frac")
	}

	base := *addr
	var stop func() error
	if *spawn != "" {
		var url string
		stop, url, err = spawnSwapd(*spawn, strings.Fields(*spawnArgs))
		if err != nil {
			return err
		}
		base = url
	}
	stopDaemon := func() error {
		if stop == nil {
			return nil
		}
		s := stop
		stop = nil
		return s()
	}
	defer stopDaemon()
	if base == "" {
		return fmt.Errorf("need -addr or -spawn")
	}
	if err := waitHealthy(base, 10*time.Second); err != nil {
		return err
	}

	cfg := genConfig{
		qps: *qps, duration: *duration, seed: *seed, weights: weights,
		dupEvery: *dupEvery, dupBurst: *dupBurst, mcRuns: *mcRuns, workers: *workers,
		hotFrac: *hotFrac, hotKeys: *hotKeys,
		chaos:       *chaos,
		wantDigests: *digestOut != "" || *digestAgainst != "" || *warm,
	}
	before, _ := snapshotCounters(base)
	rep, digests := generate(base, cfg)
	after, ok := snapshotCounters(base)
	if ok {
		rep.Results.RespCacheHits = after.respHits - before.respHits
		rep.Results.StoreHits = after.storeHits - before.storeHits
	}
	// A -warm replay reissues the byte-identical seeded stream; the deltas
	// of the server's cache counters across the pass are the warm row.
	var warmDiverged int
	if *warm {
		wrep, wdigests := generate(base, cfg)
		warmAfter, ok := snapshotCounters(base)
		w := wrep.Results
		if ok {
			w.RespCacheHits = warmAfter.respHits - after.respHits
			w.StoreHits = warmAfter.storeHits - after.storeHits
		}
		rep.Warm = &w
		// Cached bytes must decode to exactly what the cold pass solved:
		// any request that succeeded in both passes must digest identically.
		for id, d := range wdigests {
			if cold, ok := digests[id]; ok && cold != d {
				warmDiverged++
			}
		}
	}
	rep.Note = *note
	rep.Config.QPS = *qps
	rep.Config.DurationS = duration.Seconds()
	rep.Config.Seed = *seed
	rep.Config.Mix = *mix
	rep.Config.DupEvery = *dupEvery
	rep.Config.DupBurst = *dupBurst
	rep.Config.MCRuns = *mcRuns
	rep.Config.Chaos = *chaos
	rep.Config.HotFrac = *hotFrac
	rep.Config.HotKeys = 0
	if *hotFrac > 0 {
		rep.Config.HotKeys = *hotKeys
	}
	rep.Config.WarmReplay = *warm

	printReport(out, rep)
	if *against != "" {
		if err := printDeltas(out, rep, *against); err != nil {
			return err
		}
	}
	if *output != "" && *output != "-" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*output, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", *output)
	}
	if *digestOut != "" {
		if err := writeDigests(*digestOut, digests); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d result digests)\n", *digestOut, len(digests))
	}

	// A spawned daemon must exit cleanly on SIGINT — a premature death or
	// a refusal to drain is a crash (the chaos harness's zero-escaped-
	// panics gate).
	var failures []string
	if err := stopDaemon(); err != nil {
		failures = append(failures, err.Error())
	}

	r := rep.Results
	if frac := errorRate(r.Errors, r.Requests); frac > *maxErrorRate {
		failures = append(failures, fmt.Sprintf("error rate %.2f%% > %.2f%%", frac*100, *maxErrorRate*100))
	}
	if r.Requests == 0 {
		failures = append(failures, "no requests completed")
	}
	if *minQPS > 0 && r.SustainedQPS < *minQPS {
		failures = append(failures, fmt.Sprintf("sustained %.0f QPS < required %.0f", r.SustainedQPS, *minQPS))
	}
	if *maxP99Ms > 0 && r.P99Us > *maxP99Ms*1000 {
		failures = append(failures, fmt.Sprintf("p99 %.2fms > allowed %.2fms", r.P99Us/1000, *maxP99Ms))
	}
	if *requireCoalesce && r.HitRate <= 0 {
		failures = append(failures, "coalescing hit rate is 0")
	}
	if *requireShed && r.ServerShed == 0 {
		failures = append(failures, "server shed 0 requests (overload never engaged admission control)")
	}
	if *minGoodput > 0 && r.GoodputQPS < *minGoodput {
		failures = append(failures, fmt.Sprintf("goodput %.0f QPS < required %.0f", r.GoodputQPS, *minGoodput))
	}
	if warmDiverged > 0 {
		failures = append(failures, fmt.Sprintf("%d warm results differ from the cold pass (cache served wrong bytes)", warmDiverged))
	}
	if *minWarmHit > 0 {
		switch w := rep.Warm; {
		case w == nil:
			failures = append(failures, "-min-warm-hit needs -warm")
		case w.Requests == 0 || float64(w.RespCacheHits)/float64(w.Requests) < *minWarmHit:
			failures = append(failures, fmt.Sprintf("warm resp-cache hit rate %d/%d < required %.2f",
				w.RespCacheHits, w.Requests, *minWarmHit))
		}
	}
	if *warmFaster {
		switch w := rep.Warm; {
		case w == nil:
			failures = append(failures, "-warm-faster needs -warm")
		case w.P50Us >= r.P50Us || w.P99Us >= r.P99Us:
			failures = append(failures, fmt.Sprintf("warm pass not faster: p50 %.0fus vs cold %.0fus, p99 %.0fus vs cold %.0fus",
				w.P50Us, r.P50Us, w.P99Us, r.P99Us))
		}
	}
	if *digestAgainst != "" {
		if err := compareDigests(out, *digestAgainst, digests); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gates failed:\n  %s", strings.Join(failures, "\n  "))
	}
	fmt.Fprintln(out, "gates passed")
	return nil
}

func errorRate(errors, requests int) float64 {
	if requests == 0 {
		return 0
	}
	return float64(errors) / float64(requests)
}

// parseMix parses "name:weight,..." into an expanded weighted list.
func parseMix(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, wstr, found := strings.Cut(part, ":")
		w := 1
		if found {
			var err error
			if w, err = strconv.Atoi(wstr); err != nil || w <= 0 {
				return nil, fmt.Errorf("mix entry %q: weight must be a positive integer", part)
			}
		}
		if _, err := scenario.Lookup(name); err != nil {
			return nil, fmt.Errorf("mix entry %q: %v", part, err)
		}
		for i := 0; i < w; i++ {
			out = append(out, name)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty mix %q", s)
	}
	return out, nil
}

// spawnSwapd starts a swapd child on a free loopback port and returns a
// stop function plus the base URL. The stop function reports a daemon
// that died before being asked to — a crash under load is a failed run,
// not a silent restart.
func spawnSwapd(bin string, extraArgs []string) (func() error, string, error) {
	port, err := freePort()
	if err != nil {
		return nil, "", err
	}
	hostport := fmt.Sprintf("127.0.0.1:%d", port)
	cmd := exec.Command(bin, append([]string{"-addr", hostport}, extraArgs...)...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", fmt.Errorf("spawning %s: %w", bin, err)
	}
	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()
	stop := func() error {
		select {
		case err := <-waited:
			return fmt.Errorf("swapd crashed mid-run: %v", err)
		default:
		}
		cmd.Process.Signal(os.Interrupt)
		select {
		case <-waited:
			return nil
		case <-time.After(10 * time.Second):
			cmd.Process.Kill()
			<-waited
			return fmt.Errorf("swapd did not drain within 10s of SIGINT")
		}
	}
	return stop, "http://" + hostport, nil
}

// freePort asks the kernel for an unused loopback port.
func freePort() (int, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer ln.Close()
	return ln.Addr().(*net.TCPAddr).Port, nil
}

// waitHealthy polls /healthz until the daemon answers.
func waitHealthy(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("swapd at %s not healthy after %v", base, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// genConfig parameterises one load run.
type genConfig struct {
	qps      int
	duration time.Duration
	seed     int64
	weights  []string
	dupEvery int
	dupBurst int
	mcRuns   int
	workers  int
	// hotFrac > 0 switches the non-burst stream to the hot-key mix:
	// hotFrac of dispatches draw Zipf-style from hotKeys stable keyed
	// solves, the rest carry a unique key each.
	hotFrac float64
	hotKeys int
	// chaos enables the retry loop; wantDigests turns on canonical result
	// hashing (skipped otherwise — it re-parses every response).
	chaos       bool
	wantDigests bool
}

// job is one dispatched request (burst jobs share a body; id is the
// request index in the seeded sequence, the digest key).
type job struct {
	id   int
	body []byte
}

// outcome classifies one request's terminal result.
type outcome struct {
	latencyUs    float64
	coalesced    bool
	shed         bool
	rpcErr       bool
	transportErr bool
	retries      int
	attempts     int
	result       json.RawMessage // successful result payload (digesting only)
}

func (o outcome) success() bool { return !o.shed && !o.rpcErr && !o.transportErr }

// generate runs the paced stream and aggregates the measurements.
func generate(base string, cfg genConfig) (Report, map[int]string) {
	client := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        cfg.workers * 2,
			MaxIdleConnsPerHost: cfg.workers * 2,
		},
		Timeout: 30 * time.Second,
	}

	var (
		mu        sync.Mutex
		latencies []float64
		coalesced int
		shed      int
		rpcErrs   int
		transport int
		retries   int
		attempts  int
		histogram []int
		digests   = make(map[int]string)
	)
	record := func(id int, o outcome) {
		mu.Lock()
		defer mu.Unlock()
		attempts += o.attempts
		retries += o.retries
		switch {
		case o.transportErr:
			transport++
		case o.shed:
			shed++
		case o.rpcErr:
			rpcErrs++
		default:
			latencies = append(latencies, o.latencyUs)
			if o.coalesced {
				coalesced++
			}
			for len(histogram) <= o.retries {
				histogram = append(histogram, 0)
			}
			histogram[o.retries]++
			if cfg.wantDigests && o.result != nil {
				if d, err := digestResult(o.result); err == nil {
					digests[id] = d
				}
			}
		}
	}

	jobs := make(chan job, cfg.workers*4)
	var wg sync.WaitGroup
	for w := 0; w < cfg.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				record(j.id, send(client, base, j, cfg))
			}
		}()
	}

	// Paced dispatch: each request has a target send time; the dispatcher
	// catches up after stalls instead of silently lagging the rate.
	rng := rand.New(rand.NewSource(cfg.seed))
	var zipf *rand.Zipf
	if cfg.hotFrac > 0 {
		zipf = rand.NewZipf(rng, 1.2, 1, uint64(cfg.hotKeys-1))
	}
	interval := time.Second / time.Duration(cfg.qps)
	start := time.Now()
	end := start.Add(cfg.duration)
	for i := 0; ; i++ {
		target := start.Add(time.Duration(i) * interval)
		if target.After(end) {
			break
		}
		if d := time.Until(target); d > 0 {
			time.Sleep(d)
		}
		if cfg.dupEvery > 0 && i%cfg.dupEvery == 0 {
			body := burstBody(rng, cfg, i)
			for b := 0; b < cfg.dupBurst; b++ {
				jobs <- job{id: i, body: body}
			}
			continue
		}
		if zipf != nil {
			if rng.Float64() < cfg.hotFrac {
				jobs <- job{id: i, body: keyedBody(cfg, i, int64(zipf.Uint64()))}
			} else {
				jobs <- job{id: i, body: keyedBody(cfg, i, coldKeyBase+int64(i))}
			}
			continue
		}
		jobs <- job{id: i, body: solveBody(cfg.weights[rng.Intn(len(cfg.weights))], i)}
	}
	close(jobs)
	wg.Wait()
	elapsed := time.Since(start)

	var rep Report
	sort.Float64s(latencies)
	errs := shed + rpcErrs + transport
	rep.Results.Requests = len(latencies) + errs
	rep.Results.Errors = errs
	rep.Results.Shed = shed
	rep.Results.RPCErrors = rpcErrs
	rep.Results.TransportErrors = transport
	rep.Results.SustainedQPS = float64(rep.Results.Requests) / elapsed.Seconds()
	rep.Results.GoodputQPS = float64(len(latencies)) / elapsed.Seconds()
	rep.Results.Attempts = attempts
	rep.Results.Retries = retries
	if retries > 0 {
		rep.Results.RetryHistogram = histogram
	}
	rep.Results.P50Us = percentile(latencies, 0.50)
	rep.Results.P90Us = percentile(latencies, 0.90)
	rep.Results.P99Us = percentile(latencies, 0.99)
	rep.Results.MaxUs = percentile(latencies, 1)
	rep.Results.Coalesced = coalesced
	if st, ok := fetchStats(client, base); ok {
		rep.Results.HitRate = st.hitRate
		rep.Results.ServerShed = st.shed
		rep.Results.PanicsRecovered = st.panics
	} else if len(latencies) > 0 {
		rep.Results.HitRate = float64(coalesced) / float64(len(latencies))
	}
	return rep, digests
}

// solveBody builds a cheap cached solve of a preset.
func solveBody(preset string, id int) []byte {
	return []byte(fmt.Sprintf(
		`{"jsonrpc":"2.0","id":%d,"method":"swap.solve","params":{"scenario":%q,"budgetMs":20000}}`,
		id, preset))
}

// coldKeyBase offsets per-request unique keys past every hot slot, so
// the hot and cold halves of the mix can never collide on a solve key.
const coldKeyBase = int64(1) << 32

// keyedBody builds a keyed inline-scenario solve: the key picks the
// preset and becomes the seed, so equal keys are byte-identical params
// (a cache-hittable repeat) and distinct keys are distinct solve keys.
// id is only the JSON-RPC envelope id — the server's solve key hashes
// params alone.
func keyedBody(cfg genConfig, id int, key int64) []byte {
	sc, err := scenario.Lookup(cfg.weights[int(uint64(key)%uint64(len(cfg.weights)))])
	if err != nil { // mix is pre-validated; defensive only
		panic(err)
	}
	sc.Seed = key + 1
	sc.MCRuns = cfg.mcRuns
	sc.Variants = []string{"basic"}
	inline, err := json.Marshal(sc)
	if err != nil {
		panic(err)
	}
	return []byte(fmt.Sprintf(
		`{"jsonrpc":"2.0","id":%d,"method":"swap.solve","params":{"scenario":%s,"mc":true,"budgetMs":20000}}`,
		id, inline))
}

// burstBody builds one burst's shared request: an inline scenario with a
// fresh per-burst seed (so the flight key is new each burst) and a Monte
// Carlo validation expensive enough that the copies overlap in flight.
func burstBody(rng *rand.Rand, cfg genConfig, id int) []byte {
	sc, err := scenario.Lookup(cfg.weights[rng.Intn(len(cfg.weights))])
	if err != nil { // mix is pre-validated; defensive only
		panic(err)
	}
	sc.Seed = rng.Int63()
	sc.MCRuns = cfg.mcRuns
	sc.Variants = []string{"basic"}
	inline, err := json.Marshal(sc)
	if err != nil {
		panic(err)
	}
	return []byte(fmt.Sprintf(
		`{"jsonrpc":"2.0","id":%d,"method":"swap.solve","params":{"scenario":%s,"mc":true,"budgetMs":20000}}`,
		id, inline))
}

// Error codes the client reacts to (mirrors internal/rpc).
const (
	codeOverloaded    = -32005
	codeInternalError = -32603
)

// postResult is one HTTP attempt's classified response.
type postResult struct {
	coalesced    bool
	result       json.RawMessage
	errCode      int
	errSet       bool
	retryAfterMs int
	transportErr error
}

// send issues one request, retrying retryable failures when chaos mode
// is on: shed (-32005, honoring the server's retryAfterMs hint),
// injected/internal (-32603), and transport errors, under jittered
// exponential backoff. The jitter is seeded per job, so the retry
// schedule is as reproducible as the request stream.
func send(client *http.Client, base string, j job, cfg genConfig) outcome {
	maxAttempts := 1
	if cfg.chaos {
		maxAttempts = 6
	}
	rng := rand.New(rand.NewSource(cfg.seed ^ int64(j.id)*0x5851f42d4c957f2d))
	backoff := 5 * time.Millisecond
	var out outcome
	for attempt := 0; ; attempt++ {
		start := time.Now()
		res := post(client, base, j.body)
		latency := float64(time.Since(start).Microseconds())
		out.attempts = attempt + 1
		out.retries = attempt
		switch {
		case res.transportErr != nil:
			out.transportErr, out.shed, out.rpcErr = true, false, false
		case res.errSet:
			out.shed = res.errCode == codeOverloaded
			out.rpcErr = !out.shed
			out.transportErr = false
		default:
			out.latencyUs = latency
			out.coalesced = res.coalesced
			out.result = res.result
			out.shed, out.rpcErr, out.transportErr = false, false, false
			return out
		}
		retryable := res.transportErr != nil || res.errCode == codeOverloaded || res.errCode == codeInternalError
		if !cfg.chaos || !retryable || attempt == maxAttempts-1 {
			return out
		}
		delay := backoff
		if hint := time.Duration(res.retryAfterMs) * time.Millisecond; hint > delay {
			delay = hint
		}
		// Full jitter on top of the floor, so retry storms decorrelate.
		delay += time.Duration(rng.Int63n(int64(delay) + 1))
		time.Sleep(delay)
		backoff *= 2
	}
}

// post sends one request and classifies the response.
func post(client *http.Client, base string, body []byte) postResult {
	resp, err := client.Post(base+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		return postResult{transportErr: err}
	}
	defer resp.Body.Close()
	var envelope struct {
		Result json.RawMessage `json:"result"`
		Error  *struct {
			Code    int             `json:"code"`
			Message string          `json:"message"`
			Data    json.RawMessage `json:"data"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return postResult{transportErr: err}
	}
	if envelope.Error != nil {
		out := postResult{errCode: envelope.Error.Code, errSet: true}
		if len(envelope.Error.Data) > 0 {
			var hint struct {
				RetryAfterMs int `json:"retryAfterMs"`
			}
			if json.Unmarshal(envelope.Error.Data, &hint) == nil {
				out.retryAfterMs = hint.RetryAfterMs
			}
		}
		return out
	}
	var coal struct {
		Coalesced bool `json:"coalesced"`
	}
	json.Unmarshal(envelope.Result, &coal)
	return postResult{coalesced: coal.Coalesced, result: envelope.Result}
}

// serverStats is the slice of swapd.stats the report carries.
type serverStats struct {
	hitRate float64
	shed    uint64
	panics  uint64
}

// fetchStats reads the server's own counters at the end of a run.
func fetchStats(client *http.Client, base string) (serverStats, bool) {
	body := []byte(`{"jsonrpc":"2.0","id":"stats","method":"swapd.stats"}`)
	resp, err := client.Post(base+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		return serverStats{}, false
	}
	defer resp.Body.Close()
	var envelope struct {
		Result struct {
			Requests struct {
				PanicsRecovered uint64 `json:"panicsRecovered"`
			} `json:"requests"`
			Admission struct {
				Shed uint64 `json:"shed"`
			} `json:"admission"`
			Coalescing struct {
				HitRate float64 `json:"hitRate"`
			} `json:"coalescing"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return serverStats{}, false
	}
	return serverStats{
		hitRate: envelope.Result.Coalescing.HitRate,
		shed:    envelope.Result.Admission.Shed,
		panics:  envelope.Result.Requests.PanicsRecovered,
	}, true
}

// cacheCounters are the cumulative server-side cache counters a pass is
// delta'd against (swapd.stats snapshots bracket each pass).
type cacheCounters struct {
	respHits  uint64
	storeHits uint64
}

// snapshotCounters reads the server's response-cache and solve-store hit
// counters.
func snapshotCounters(base string) (cacheCounters, bool) {
	body := []byte(`{"jsonrpc":"2.0","id":"counters","method":"swapd.stats"}`)
	resp, err := http.Post(base+"/rpc", "application/json", bytes.NewReader(body))
	if err != nil {
		return cacheCounters{}, false
	}
	defer resp.Body.Close()
	var envelope struct {
		Result struct {
			RespCache struct {
				Hits uint64 `json:"hits"`
			} `json:"respCache"`
			Store struct {
				Hits uint64 `json:"hits"`
			} `json:"store"`
		} `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return cacheCounters{}, false
	}
	return cacheCounters{
		respHits:  envelope.Result.RespCache.Hits,
		storeHits: envelope.Result.Store.Hits,
	}, true
}

// digestResult canonicalises one solve result and hashes it: volatile
// per-request fields (latency, coalescing luck, cache luck) are dropped, the rest is
// re-marshalled (Go sorts object keys) and SHA-256'd. Two runs of the
// same seeded request must digest identically — faults may delay or shed
// a request, never change what it solves to.
func digestResult(result json.RawMessage) (string, error) {
	var v map[string]any
	if err := json.Unmarshal(result, &v); err != nil {
		return "", err
	}
	delete(v, "elapsedUs")
	delete(v, "coalesced")
	delete(v, "cached")
	data, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// digestFile is the -digest-out schema.
type digestFile struct {
	Note    string            `json:"note"`
	Digests map[string]string `json:"digests"`
}

// writeDigests persists the run's result digests.
func writeDigests(path string, digests map[int]string) error {
	out := digestFile{
		Note:    "canonical solve-result hashes by request index; compare with -digest-against",
		Digests: make(map[string]string, len(digests)),
	}
	for id, d := range digests {
		out.Digests[strconv.Itoa(id)] = d
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// compareDigests checks every request that succeeded in both runs solved
// to byte-identical canonical results — the chaos correctness gate.
func compareDigests(out io.Writer, path string, digests map[int]string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("digest baseline: %v", err)
	}
	var base digestFile
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("digest baseline %s: %v", path, err)
	}
	shared, mismatched := 0, 0
	for id, d := range digests {
		want, ok := base.Digests[strconv.Itoa(id)]
		if !ok {
			continue
		}
		shared++
		if d != want {
			mismatched++
		}
	}
	if shared == 0 {
		return fmt.Errorf("digest compare vs %s: no shared successful requests", path)
	}
	if mismatched > 0 {
		return fmt.Errorf("digest compare vs %s: %d of %d shared results differ (faults corrupted a solve)",
			path, mismatched, shared)
	}
	fmt.Fprintf(out, "digest compare vs %s: %d shared results byte-identical\n", path, shared)
	return nil
}

// percentile reads the q-quantile from sorted data by the nearest-rank
// method: rank ceil(q*n), 1-based. Truncating q*n instead of taking the
// ceiling reads one rank low whenever q*n is fractional — a bias that
// understates tail latency (p99 of 150 samples must be the 149th value,
// not the 148th).
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// printReport renders the human-readable summary.
func printReport(out io.Writer, rep Report) {
	r := rep.Results
	fmt.Fprintf(out, "loadgen: %d requests (%d errors: %d shed, %d rpc, %d transport), sustained %.0f QPS, goodput %.0f QPS\n",
		r.Requests, r.Errors, r.Shed, r.RPCErrors, r.TransportErrors, r.SustainedQPS, r.GoodputQPS)
	fmt.Fprintf(out, "latency: p50 %.2fms  p90 %.2fms  p99 %.2fms  max %.2fms\n",
		r.P50Us/1000, r.P90Us/1000, r.P99Us/1000, r.MaxUs/1000)
	fmt.Fprintf(out, "coalescing: %d coalesced responses, server hit rate %.1f%%\n",
		r.Coalesced, r.HitRate*100)
	if r.Retries > 0 {
		fmt.Fprintf(out, "chaos: %d attempts, %d retries, histogram %v, server shed %d, panics recovered %d\n",
			r.Attempts, r.Retries, r.RetryHistogram, r.ServerShed, r.PanicsRecovered)
	}
	if r.RespCacheHits > 0 || r.StoreHits > 0 {
		fmt.Fprintf(out, "caches: %d resp-cache hits, %d store hits\n", r.RespCacheHits, r.StoreHits)
	}
	if w := rep.Warm; w != nil {
		fmt.Fprintf(out, "warm: %d requests (%d errors), p50 %.2fms  p99 %.2fms, %d resp-cache hits, %d store hits\n",
			w.Requests, w.Errors, w.P50Us/1000, w.P99Us/1000, w.RespCacheHits, w.StoreHits)
	}
}

// printDeltas reports the run against a committed baseline (informational:
// wall-clock metrics are hardware-dependent, so the hard gates are the
// absolute -min-qps/-max-p99-ms flags).
func printDeltas(out io.Writer, rep Report, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", path, err)
	}
	fmt.Fprintf(out, "vs %s: qps %+.1f%%  p99 %+.1f%%  hit rate %.1f%% -> %.1f%%\n",
		path,
		ratioDelta(rep.Results.SustainedQPS, base.Results.SustainedQPS),
		ratioDelta(rep.Results.P99Us, base.Results.P99Us),
		base.Results.HitRate*100, rep.Results.HitRate*100)
	return nil
}

// ratioDelta is the percentage change of cur against base.
func ratioDelta(cur, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (cur - base) / base * 100
}
